// Tests for the deterministic work ledger and the machine-peak
// calibration (src/obs/work.*, src/obs/roofline.*): exact pinned
// FLOP/byte counts for known shapes, ledger accumulation / merge /
// reset semantics, coverage of the search hot path, the peak JSON
// sidecar round-trip, and — the load-bearing guarantee — bit-identical
// search results with the ledger on versus off.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/fed/messages.h"
#include "src/obs/roofline.h"
#include "src/obs/telemetry.h"
#include "src/obs/work.h"
#include "src/tensor/tensor.h"

namespace fms {
namespace {

// Every test drives the process-global ledger flag; start and end clean
// so ordering between tests (and other test files) is moot.
class WorkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_telemetry_enabled(false);
    obs::set_work_tracking_enabled(false);
    obs::reset_work_ledger();
    obs::Telemetry::instance().clear_sinks();
    obs::Telemetry::instance().registry().reset();
  }
  void TearDown() override { SetUp(); }
};

struct TinyWorld {
  TrainTest data;
  std::vector<std::vector<int>> partition;
  SearchConfig cfg;
};

// Callers must keep the returned TinyWorld at a stable address before
// constructing a FederatedSearch from it: participants keep pointers
// into `data`.
TinyWorld make_tiny_world(std::uint64_t seed) {
  Rng rng(seed);
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 4;
  cfg.seed = seed;
  auto partition =
      iid_partition(data.train.size(), cfg.schedule.num_participants, rng);
  return TinyWorld{std::move(data), std::move(partition), cfg};
}

const obs::WorkRow* find_op(const obs::WorkReport& report,
                            const std::string& op) {
  for (const obs::WorkRow& row : report.rows) {
    if (row.op == op) return &row;
  }
  return nullptr;
}

TEST_F(WorkTest, CostModelsArePinnedForKnownShapes) {
  // The bench conv3x3 shape: x = {4,8,8,8}, Conv2d(8 -> 8, 3x3, pad 1),
  // so the output is {4,8,8,8} too. macs = 2048 * 8 * 3 * 3 = 147456.
  const obs::OpCost conv = obs::conv2d_fwd_cost(4, 8, 8, 8, 8, 3, 3, 8, 8, 1);
  EXPECT_EQ(conv.flops, 294912U);                 // 2 * macs
  EXPECT_EQ(conv.bytes_read, 4U * (2048 + 576));  // x + w, once each
  EXPECT_EQ(conv.bytes_written, 4U * 2048);       // y
  EXPECT_EQ(conv.elements, 2048U);

  const obs::OpCost convb =
      obs::conv2d_bwd_cost(4, 8, 8, 8, 8, 3, 3, 8, 8, 1);
  EXPECT_EQ(convb.flops, 589824U);  // grad_x + grad_w GEMMs, 2 * macs each
  EXPECT_EQ(convb.bytes_read, 4U * (2048 + 2048 + 576));
  EXPECT_EQ(convb.bytes_written, 4U * (2048 + 576));
  EXPECT_EQ(convb.elements, 2048U + 576U);

  const obs::OpCost mm = obs::matmul_cost(2, 3, 4);
  EXPECT_EQ(mm.flops, 48U);           // 2 * 2 * 3 * 4
  EXPECT_EQ(mm.bytes_read, 72U);      // 4 * (6 + 12)
  EXPECT_EQ(mm.bytes_written, 32U);   // 4 * 8
  EXPECT_EQ(mm.elements, 8U);

  const obs::OpCost bn = obs::batchnorm_fwd_cost(4, 8, 8, 8, true);
  EXPECT_EQ(bn.flops, 8U * 2048 + 10U * 8);
  EXPECT_EQ(bn.bytes_read, 4U * (2048 + 32));
  EXPECT_EQ(bn.bytes_written, 4U * (2 * 2048 + 16));
  EXPECT_EQ(bn.elements, 2048U);
  const obs::OpCost bn_eval = obs::batchnorm_fwd_cost(4, 8, 8, 8, false);
  EXPECT_EQ(bn_eval.flops, 4U * 2048 + 3U * 8);
  EXPECT_EQ(bn_eval.bytes_written, 4U * 2048);

  const obs::OpCost mean = obs::agg_mean_cost(10, 100);
  EXPECT_EQ(mean.flops, 1100U);          // m*d sums + d scales
  EXPECT_EQ(mean.bytes_read, 4000U);     // every update, once
  EXPECT_EQ(mean.bytes_written, 400U);   // the aggregate
  EXPECT_EQ(mean.elements, 100U);

  // ceil_log2 drives the sort-based estimators.
  EXPECT_EQ(obs::ceil_log2(1), 0U);
  EXPECT_EQ(obs::ceil_log2(2), 1U);
  EXPECT_EQ(obs::ceil_log2(3), 2U);
  EXPECT_EQ(obs::ceil_log2(8), 3U);
  EXPECT_EQ(obs::ceil_log2(10), 4U);
  const obs::OpCost med = obs::agg_coordinate_median_cost(10, 7);
  EXPECT_EQ(med.flops, 7U * (10 * 4 + 1));

  const obs::OpCost axpy = obs::axpy_cost(64);
  EXPECT_EQ(axpy.flops, 64U);
  EXPECT_EQ(axpy.bytes_read, 512U);   // y read-modify-write + x
  EXPECT_EQ(axpy.bytes_written, 256U);

  // Arithmetic intensity is FLOPs per byte moved, both directions.
  EXPECT_DOUBLE_EQ(obs::arithmetic_intensity(mm),
                   48.0 / (72.0 + 32.0));
  EXPECT_DOUBLE_EQ(obs::arithmetic_intensity(obs::OpCost{}), 0.0);
}

TEST_F(WorkTest, LedgerAccumulatesMergesDeterministicallyAndResets) {
  obs::set_work_tracking_enabled(true);
  obs::reset_work_ledger();
  FMS_WORK("test.op_b", obs::matmul_cost(2, 3, 4));
  FMS_WORK("test.op_a", obs::axpy_cost(10));
  FMS_WORK("test.op_b", obs::matmul_cost(2, 3, 4));
  const obs::WorkReport first = obs::collect_work();
  const obs::WorkReport second = obs::collect_work();
  obs::set_work_tracking_enabled(false);

  ASSERT_EQ(first.rows.size(), 2U);
  // Rows come back in lexicographic op order regardless of record order.
  EXPECT_EQ(first.rows[0].op, "test.op_a");
  EXPECT_EQ(first.rows[1].op, "test.op_b");
  EXPECT_EQ(first.rows[1].calls, 2U);
  EXPECT_EQ(first.rows[1].cost.flops, 96U);
  EXPECT_EQ(first.rows[1].cost.bytes_read, 144U);
  EXPECT_EQ(first.total_calls, 3U);
  EXPECT_EQ(first.total.flops, 96U + 10U);

  // Collection must be a pure read: identical back-to-back reports.
  ASSERT_EQ(second.rows.size(), first.rows.size());
  for (std::size_t i = 0; i < first.rows.size(); ++i) {
    EXPECT_EQ(first.rows[i].op, second.rows[i].op);
    EXPECT_EQ(first.rows[i].calls, second.rows[i].calls);
    EXPECT_EQ(first.rows[i].cost.flops, second.rows[i].cost.flops);
  }

  obs::reset_work_ledger();
  EXPECT_TRUE(obs::collect_work().rows.empty());
  EXPECT_EQ(obs::collect_work().total_calls, 0U);
}

TEST_F(WorkTest, DisabledLedgerRecordsNothingAndEvaluatesNoCost) {
  int evaluations = 0;
  auto costed = [&] {
    ++evaluations;
    return obs::axpy_cost(8);
  };
  FMS_WORK("test.never", costed());
  EXPECT_EQ(evaluations, 0);  // cost expression must not run when off
  EXPECT_TRUE(obs::collect_work().rows.empty());
}

TEST_F(WorkTest, TensorAxpyIsRecorded) {
  obs::set_work_tracking_enabled(true);
  obs::reset_work_ledger();
  Tensor a({64}, 1.0F);
  const Tensor b({64}, 2.0F);
  a += b;
  const obs::WorkReport report = obs::collect_work();
  obs::set_work_tracking_enabled(false);

  const obs::WorkRow* axpy = find_op(report, "tensor.axpy");
  ASSERT_NE(axpy, nullptr);
  EXPECT_EQ(axpy->calls, 1U);
  EXPECT_EQ(axpy->cost.flops, 64U);
  EXPECT_EQ(axpy->cost.bytes_written, 256U);
}

TEST_F(WorkTest, SearchLedgerCoversHotOpsAndOnOffIsBitIdentical) {
  // Two runs of the same seeded search, ledger off then on: the ledger
  // only observes, so every round record and the derived genotype must
  // match bit for bit — and the on-run must have charged the hot ops.
  SearchOptions opts;
  obs::WorkReport on_report;
  auto run = [&](bool tracked) {
    TinyWorld w = make_tiny_world(55);
    FederatedSearch search(w.cfg, w.data.train, w.partition);
    obs::set_work_tracking_enabled(tracked);
    obs::reset_work_ledger();
    search.run_warmup(1);
    std::vector<RoundRecord> records = search.run_search(3, opts);
    const Genotype genotype = search.derive();
    if (tracked) on_report = obs::collect_work();
    obs::set_work_tracking_enabled(false);
    return std::make_pair(std::move(records), genotype.to_string());
  };
  const auto off = run(false);
  const auto on = run(true);

  ASSERT_EQ(off.first.size(), on.first.size());
  for (std::size_t i = 0; i < off.first.size(); ++i) {
    EXPECT_EQ(off.first[i].mean_reward, on.first[i].mean_reward);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].moving_avg, on.first[i].moving_avg);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].baseline, on.first[i].baseline);  // fms-lint: allow(float-eq) -- bit-identity is the contract
    EXPECT_EQ(off.first[i].arrived, on.first[i].arrived);
  }
  EXPECT_EQ(off.second, on.second);

  for (const char* op : {"nn.conv_fwd", "nn.conv_bwd", "nn.bn_fwd",
                         "nn.relu_fwd", "agg.mean", "tensor.axpy"}) {
    const obs::WorkRow* row = find_op(on_report, op);
    ASSERT_NE(row, nullptr) << "missing hot op " << op;
    EXPECT_GT(row->calls, 0U) << op;
  }
  EXPECT_GT(on_report.total.flops, 0U);
  EXPECT_GT(on_report.total.bytes_read, 0U);
}

TEST_F(WorkTest, SearchLedgerIsReproducibleAcrossRuns) {
  // The counts themselves are part of the deterministic surface: two
  // identical searches must produce identical ledgers, exactly.
  SearchOptions opts;
  std::vector<obs::WorkReport> reports;
  for (int run = 0; run < 2; ++run) {
    TinyWorld w = make_tiny_world(77);
    FederatedSearch search(w.cfg, w.data.train, w.partition);
    obs::set_work_tracking_enabled(true);
    obs::reset_work_ledger();
    search.run_warmup(1);
    search.run_search(2, opts);
    reports.push_back(obs::collect_work());
    obs::set_work_tracking_enabled(false);
    obs::reset_work_ledger();
  }
  ASSERT_EQ(reports[0].rows.size(), reports[1].rows.size());
  for (std::size_t i = 0; i < reports[0].rows.size(); ++i) {
    EXPECT_EQ(reports[0].rows[i].op, reports[1].rows[i].op);
    EXPECT_EQ(reports[0].rows[i].calls, reports[1].rows[i].calls);
    EXPECT_EQ(reports[0].rows[i].cost.flops, reports[1].rows[i].cost.flops);
    EXPECT_EQ(reports[0].rows[i].cost.bytes_read,
              reports[1].rows[i].cost.bytes_read);
    EXPECT_EQ(reports[0].rows[i].cost.bytes_written,
              reports[1].rows[i].cost.bytes_written);
    EXPECT_EQ(reports[0].rows[i].cost.elements,
              reports[1].rows[i].cost.elements);
  }
}

TEST_F(WorkTest, MessageCodecsRecordPayloadBytes) {
  // Wire codecs move bytes, not FLOPs: each serialize/deserialize books
  // the payload once on each side of the convention.
  obs::set_work_tracking_enabled(true);
  obs::reset_work_ledger();
  UpdateMsg msg;
  msg.round = 3;
  msg.participant = 1;
  msg.reward = 0.5F;
  msg.grads = {1.0F, 2.0F, 3.0F};
  const std::vector<std::uint8_t> wire = msg.serialize();
  const UpdateMsg back = UpdateMsg::deserialize(wire);
  const obs::WorkReport report = obs::collect_work();
  obs::set_work_tracking_enabled(false);

  EXPECT_EQ(back.round, 3);
  const obs::WorkRow* enc = find_op(report, "fed.encode");
  const obs::WorkRow* dec = find_op(report, "fed.decode");
  ASSERT_NE(enc, nullptr);
  ASSERT_NE(dec, nullptr);
  EXPECT_EQ(enc->calls, 1U);
  EXPECT_EQ(enc->cost.flops, 0U);
  EXPECT_EQ(enc->cost.bytes_written, wire.size());
  EXPECT_EQ(enc->cost.elements, wire.size());
  EXPECT_EQ(dec->cost.bytes_read, wire.size());
}

TEST_F(WorkTest, WorkTableRendersSortedByFlops) {
  obs::set_work_tracking_enabled(true);
  obs::reset_work_ledger();
  FMS_WORK("test.light", obs::axpy_cost(4));
  FMS_WORK("test.heavy", obs::matmul_cost(64, 64, 64));
  const obs::WorkReport report = obs::collect_work();
  obs::set_work_tracking_enabled(false);

  const std::string table = obs::work_table(report);
  EXPECT_NE(table.find("mflops"), std::string::npos);
  const std::size_t heavy = table.find("test.heavy");
  const std::size_t light = table.find("test.light");
  ASSERT_NE(heavy, std::string::npos);
  ASSERT_NE(light, std::string::npos);
  EXPECT_LT(heavy, light);  // heaviest op first
}

TEST_F(WorkTest, EmitWorkTelemetrySetsPerOpGauges) {
  obs::set_work_tracking_enabled(true);
  obs::reset_work_ledger();
  FMS_WORK("test.emit", obs::matmul_cost(2, 3, 4));
  const obs::WorkReport report = obs::collect_work();
  obs::set_work_tracking_enabled(false);

  obs::set_telemetry_enabled(true);
  obs::emit_work_telemetry(report);
  obs::MetricsRegistry& reg = obs::Telemetry::instance().registry();
  EXPECT_DOUBLE_EQ(reg.gauge("fms.work.test.emit.flops").value(), 48.0);
  EXPECT_DOUBLE_EQ(reg.gauge("fms.work.test.emit.calls").value(), 1.0);
  obs::set_telemetry_enabled(false);
}

TEST_F(WorkTest, PeakJsonRoundTripsExactly) {
  obs::MachinePeak peak;
  peak.scalar_gflops = 3.14159265358979312;
  peak.vector_gflops = 42.5;
  peak.stream_gbps = 17.25;
  peak.calibrated_ms = 12.0;
  obs::MachinePeak back;
  ASSERT_TRUE(obs::parse_machine_peak(obs::peak_to_json(peak), &back));
  EXPECT_EQ(back.scalar_gflops, peak.scalar_gflops);  // fms-lint: allow(float-eq) -- %.17g round-trip is exact
  EXPECT_EQ(back.vector_gflops, peak.vector_gflops);  // fms-lint: allow(float-eq) -- %.17g round-trip is exact
  EXPECT_EQ(back.stream_gbps, peak.stream_gbps);  // fms-lint: allow(float-eq) -- %.17g round-trip is exact
  EXPECT_EQ(back.calibrated_ms, peak.calibrated_ms);  // fms-lint: allow(float-eq) -- %.17g round-trip is exact

  obs::MachinePeak reject;
  EXPECT_FALSE(obs::parse_machine_peak("{\"schema\": 2}", &reject));
  EXPECT_FALSE(obs::parse_machine_peak("not json", &reject));
  // A peak with a zero component is invalid and must not parse.
  peak.stream_gbps = 0.0;
  EXPECT_FALSE(obs::parse_machine_peak(obs::peak_to_json(peak), &reject));
}

TEST_F(WorkTest, LoadOrCalibrateUsesTheCacheWithoutRemeasuring) {
  const std::string path = "fms_test_peak_cache.json";
  obs::MachinePeak cached;
  cached.scalar_gflops = 1.5;
  cached.vector_gflops = 9.75;
  cached.stream_gbps = 4.25;
  cached.calibrated_ms = 7.0;
  {
    std::ofstream out(path);
    out << obs::peak_to_json(cached);
  }
  // A valid sidecar is authoritative: the values (calibrated_ms
  // included) come back exactly, proving no re-calibration happened.
  const obs::MachinePeak loaded = obs::load_or_calibrate(path);
  EXPECT_EQ(loaded.scalar_gflops, cached.scalar_gflops);  // fms-lint: allow(float-eq) -- cache hit must be exact
  EXPECT_EQ(loaded.vector_gflops, cached.vector_gflops);  // fms-lint: allow(float-eq) -- cache hit must be exact
  EXPECT_EQ(loaded.stream_gbps, cached.stream_gbps);  // fms-lint: allow(float-eq) -- cache hit must be exact
  EXPECT_EQ(loaded.calibrated_ms, cached.calibrated_ms);  // fms-lint: allow(float-eq) -- cache hit must be exact

  // A corrupt sidecar falls back to calibration and rewrites the file.
  {
    std::ofstream out(path);
    out << "garbage";
  }
  const obs::MachinePeak fresh = obs::load_or_calibrate(path);
  EXPECT_TRUE(fresh.valid());
  std::ifstream in(path);
  std::string rewritten((std::istreambuf_iterator<char>(in)),
                        std::istreambuf_iterator<char>());
  obs::MachinePeak reparsed;
  EXPECT_TRUE(obs::parse_machine_peak(rewritten, &reparsed));
  std::remove(path.c_str());
}

TEST_F(WorkTest, RooflineCeilingIsMinOfComputeAndBandwidth) {
  obs::MachinePeak peak;
  peak.scalar_gflops = 10.0;
  peak.vector_gflops = 100.0;
  peak.stream_gbps = 10.0;
  EXPECT_DOUBLE_EQ(obs::roofline_gflops(peak, 5.0), 50.0);    // memory-bound
  EXPECT_DOUBLE_EQ(obs::roofline_gflops(peak, 20.0), 100.0);  // compute-bound
  EXPECT_DOUBLE_EQ(obs::roofline_gflops(peak, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(obs::roofline_gflops(obs::MachinePeak{}, 5.0), 0.0);
}

}  // namespace
}  // namespace fms
