// Integration tests: the full federated search pipeline end to end on a
// tiny synthetic workload — warm-up, search, staleness policies, adaptive
// transmission accounting, and genotype derivation + retraining.
#include <algorithm>
#include <cmath>

#include "gtest/gtest.h"
#include "src/core/retrain.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/nas/discrete_net.h"

namespace fms {
namespace {

SearchConfig tiny_config() {
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 4;
  cfg.seed = 7;
  return cfg;
}

TrainTest tiny_data(Rng& rng) {
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  return make_synth_c10(spec, rng);
}

TEST(SearchIntegration, WarmupImprovesTrainingAccuracy) {
  // Weight-shared warm-up is slow by nature (each op is sampled w.p. 1/N
  // per edge — the paper uses 10000 warm-up steps), so give the test an
  // easy low-noise task and a bigger batch so the learning signal
  // dominates sampling noise within a short horizon.
  Rng rng(1);
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  spec.noise_std = 0.05F;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.batch_size = 16;
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);
  FederatedSearch search(cfg, tt.train, parts);
  auto records = search.run_warmup(150);
  ASSERT_EQ(records.size(), 150u);
  double early = 0.0, late = 0.0;
  for (int i = 0; i < 20; ++i) early += records[static_cast<std::size_t>(i)].mean_reward;
  for (int i = 130; i < 150; ++i) late += records[static_cast<std::size_t>(i)].mean_reward;
  EXPECT_GT(late / 20.0, early / 20.0 + 0.02);
}

TEST(SearchIntegration, SearchRunsAndDerivesGenotype) {
  Rng rng(2);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);
  FederatedSearch search(cfg, tt.train, parts);
  search.run_warmup(10);
  SearchOptions opts;
  auto records = search.run_search(20, opts);
  ASSERT_EQ(records.size(), 20u);
  for (const auto& r : records) {
    EXPECT_EQ(r.arrived, 4);  // hard sync: all updates arrive fresh
    EXPECT_EQ(r.dropped, 0);
    EXPECT_GT(r.bytes_down, 0u);
    EXPECT_GT(r.bytes_up, 0u);
  }
  Genotype g = search.derive();
  EXPECT_EQ(g.normal.size(), static_cast<std::size_t>(2 * cfg.supernet.num_nodes));
  // The alpha must have moved away from exact uniformity.
  EXPECT_GT(search.policy().alpha().l2_norm(), 0.0F);
}

TEST(SearchIntegration, SubmodelPayloadIsFractionOfSupernet) {
  Rng rng(3);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);
  FederatedSearch search(cfg, tt.train, parts);
  search.run_warmup(3);
  EXPECT_GT(search.avg_submodel_bytes(), 0.0);
  EXPECT_LT(search.avg_submodel_bytes(),
            0.5 * static_cast<double>(search.supernet_bytes()));
}

TEST(SearchIntegration, SoftSyncPoliciesRunAndAccountArrivals) {
  Rng rng(4);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);

  for (StalePolicy policy :
       {StalePolicy::kCompensate, StalePolicy::kUseStale, StalePolicy::kDrop}) {
    FederatedSearch search(cfg, tt.train, parts);
    search.run_warmup(5);
    SearchOptions opts;
    opts.stale_policy = policy;
    opts.staleness = StalenessDistribution::severe();
    auto records = search.run_search(25, opts);
    int arrived = 0, dropped = 0;
    for (const auto& r : records) {
      arrived += r.arrived;
      dropped += r.dropped;
    }
    // ~10% of updates exceed the threshold under the severe distribution;
    // kDrop additionally discards every stale arrival.
    EXPECT_GT(dropped, 0) << stale_policy_name(policy);
    EXPECT_GT(arrived, 0) << stale_policy_name(policy);
    if (policy == StalePolicy::kDrop) {
      EXPECT_LT(arrived, 25 * 4 / 2) << "drop should lose most updates";
    }
    // Search must still produce a usable genotype.
    Genotype g = search.derive();
    EXPECT_EQ(g.normal.size(), 4u);
  }
}

TEST(SearchIntegration, HardSyncRecordsNoStalenessButTracksPolicyState) {
  Rng rng(14);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);
  FederatedSearch search(cfg, tt.train, parts);
  search.run_warmup(3);
  auto records = search.run_search(10, SearchOptions{});
  for (const auto& r : records) {
    // Hard sync: every update is fresh, nothing is repaired.
    EXPECT_EQ(r.stale_arrived, 0);
    EXPECT_EQ(r.compensated, 0);
    EXPECT_DOUBLE_EQ(r.mean_tau, 0.0);
    EXPECT_EQ(r.max_tau, 0);
    // Policy observability rides along on every record: a softmax over
    // 8 ops has entropy in (0, ln 8], and the REINFORCE baseline tracks
    // rewards in [0, 1].
    EXPECT_GT(r.alpha_entropy, 0.0);
    EXPECT_LE(r.alpha_entropy, std::log(8.0) + 1e-5);
    EXPECT_GE(r.baseline, 0.0);
    EXPECT_LE(r.baseline, 1.0);
  }
}

TEST(SearchIntegration, StalenessObservabilityTracksPolicy) {
  Rng rng(15);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);

  auto totals = [&](StalePolicy policy) {
    FederatedSearch search(cfg, tt.train, parts);
    search.run_warmup(3);
    SearchOptions opts;
    opts.stale_policy = policy;
    opts.staleness = StalenessDistribution::severe();
    auto records = search.run_search(30, opts);
    int stale = 0, compensated = 0, max_tau = 0;
    double mean_tau_sum = 0.0;
    for (const auto& r : records) {
      stale += r.stale_arrived;
      compensated += r.compensated;
      max_tau = std::max(max_tau, r.max_tau);
      mean_tau_sum += r.mean_tau;
      EXPECT_LE(r.compensated, r.arrived);
      EXPECT_LE(r.stale_arrived, r.arrived);
      EXPECT_GE(r.mean_tau, 0.0);
      EXPECT_LE(r.mean_tau, static_cast<double>(r.max_tau));
    }
    struct Totals {
      int stale, compensated, max_tau;
      double mean_tau_sum;
    };
    return Totals{stale, compensated, max_tau, mean_tau_sum};
  };

  // Severe distribution: 60% of updates arrive 1-2 rounds late.
  const auto comp = totals(StalePolicy::kCompensate);
  EXPECT_GT(comp.stale, 0);
  EXPECT_GT(comp.compensated, 0);      // every applied stale update repaired
  EXPECT_EQ(comp.compensated, comp.stale);
  EXPECT_GE(comp.max_tau, 1);
  EXPECT_GT(comp.mean_tau_sum, 0.0);

  const auto use = totals(StalePolicy::kUseStale);
  EXPECT_GT(use.stale, 0);             // stale updates applied as-is...
  EXPECT_EQ(use.compensated, 0);       // ...with no compensation

  const auto drop = totals(StalePolicy::kDrop);
  EXPECT_EQ(drop.stale, 0);            // stale updates never applied
  EXPECT_EQ(drop.compensated, 0);
}

TEST(SearchIntegration, AlphaOnlyUpdateOptionFreezesTheta) {
  Rng rng(5);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);
  FederatedSearch search(cfg, tt.train, parts);
  std::vector<float> before = search.supernet().flat_values();
  SearchOptions opts;
  opts.update_theta = false;
  search.run_search(3, opts);
  std::vector<float> after = search.supernet().flat_values();
  // BatchNorm running stats are not parameters; values must be identical.
  EXPECT_EQ(before, after);
}

TEST(SearchIntegration, AdaptiveBeatsRandomOnMaxLatency) {
  Rng rng(6);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 6;
  auto parts = iid_partition(tt.train.size(), 6, rng);

  auto run_with = [&](AssignStrategy s) {
    SearchConfig c = cfg;
    FederatedSearch search(c, tt.train, parts);
    SearchOptions opts;
    opts.assign = s;
    auto records = search.run_search(12, opts);
    double sum = 0.0;
    for (const auto& r : records) sum += r.max_latency_s;
    return sum / static_cast<double>(records.size());
  };
  const double adaptive = run_with(AssignStrategy::kAdaptive);
  const double random = run_with(AssignStrategy::kRandom);
  EXPECT_LT(adaptive, random * 1.05);  // adaptive at least matches random
}

TEST(SearchIntegration, DerivedModelTrainsCentralized) {
  Rng rng(7);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);
  FederatedSearch search(cfg, tt.train, parts);
  search.run_warmup(5);
  search.run_search(10, SearchOptions{});
  Genotype g = search.derive();
  Rng net_rng(8);
  DiscreteNet net(g, cfg.supernet, net_rng);
  SGD::Options opts{0.05F, 0.9F, 0.0003F, 5.0F};
  Rng train_rng(9);
  RetrainResult res = centralized_train(net, tt.train, tt.test, 3, 16, opts,
                                        nullptr, train_rng, 1);
  EXPECT_EQ(res.curve.size(), 3u);
  // Better than random guessing on a 10-class problem.
  EXPECT_GT(res.final_test_accuracy, 0.15);
}

TEST(SearchIntegration, FederatedRetrainingConverges) {
  Rng rng(10);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), 4, rng);
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : a) row.fill(0.0F);
  Genotype g = discretize(a, a, 2);
  Rng net_rng(11);
  DiscreteNet net(g, cfg.supernet, net_rng);
  SGD::Options opts{0.1F, 0.5F, 0.005F, 5.0F};
  Rng train_rng(12);
  RetrainResult res = federated_train(net, tt.train, parts, tt.test, 40, 8,
                                      opts, nullptr, train_rng, 10);
  EXPECT_EQ(res.curve.size(), 40u);
  EXPECT_GT(res.final_test_accuracy, 0.15);
}

TEST(SearchIntegration, DeterministicGivenSeed) {
  Rng rng(13);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants, rng);
  auto run = [&] {
    FederatedSearch search(cfg, tt.train, parts);
    search.run_warmup(3);
    auto recs = search.run_search(5, SearchOptions{});
    return recs.back().mean_reward;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace fms
