// Churn + graceful-degradation surface: the deterministic churn schedule,
// the persistent client registry, the adaptive round-deadline estimator,
// the degradation ladder's hysteresis, and the end-to-end churn campaign
// (steady churn + burst mass-leave, every mode entered and exited, the
// search still converges, kill-and-resume stays bit-identical). Selected
// with `ctest -L churn`.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/check.h"
#include "src/common/serialize.h"
#include "src/core/checkpoint.h"
#include "src/core/deadline.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/fault/degrade.h"
#include "src/fed/registry.h"
#include "src/sim/churn.h"
#include "src/sim/staleness.h"

namespace fms {
namespace {

// --- ChurnPlan: parsing ---

TEST(ChurnPlan, ParseRoundTripsThroughToString) {
  const ChurnPlan plan = ChurnPlan::parse(
      "leave=0.1,away_min=1,away_max=3,late_join=0.2,join_spread=5,"
      "burst=0.3,burst_round=7,burst_away=4,diurnal=0.5,diurnal_period=24,"
      "seed=9");
  EXPECT_DOUBLE_EQ(plan.leave_p, 0.1);
  EXPECT_EQ(plan.away_min, 1);
  EXPECT_EQ(plan.away_max, 3);
  EXPECT_DOUBLE_EQ(plan.late_join_fraction, 0.2);
  EXPECT_EQ(plan.join_spread, 5);
  EXPECT_DOUBLE_EQ(plan.burst_fraction, 0.3);
  EXPECT_EQ(plan.burst_round, 7);
  EXPECT_EQ(plan.burst_away, 4);
  EXPECT_DOUBLE_EQ(plan.diurnal_amplitude, 0.5);
  EXPECT_EQ(plan.diurnal_period, 24);
  EXPECT_EQ(plan.seed, 9u);
  EXPECT_FALSE(plan.empty());

  const ChurnPlan again = ChurnPlan::parse(plan.to_string());
  EXPECT_EQ(again.to_string(), plan.to_string());
}

TEST(ChurnPlan, EmptyAndDefaultPlansAreInert) {
  EXPECT_TRUE(ChurnPlan{}.empty());
  EXPECT_TRUE(ChurnPlan::parse("").empty());
  // Tuning knobs without a rate keep the plan inert.
  EXPECT_TRUE(ChurnPlan::parse("away_min=3,away_max=5").empty());
}

TEST(ChurnPlan, BadSpecsAreRejected) {
  EXPECT_THROW(ChurnPlan::parse("bogus=1"), CheckError);
  EXPECT_THROW(ChurnPlan::parse("leave"), CheckError);
  EXPECT_THROW(ChurnPlan::parse("leave=1.5"), CheckError);
  EXPECT_THROW(ChurnPlan::parse("leave=abc"), CheckError);
  EXPECT_THROW(ChurnPlan::parse("away_min=0"), CheckError);
  EXPECT_THROW(ChurnPlan::parse("away_min=5,away_max=2"), CheckError);
  EXPECT_THROW(ChurnPlan::parse("diurnal_period=1"), CheckError);
  EXPECT_THROW(ChurnPlan::parse("burst_round=-1"), CheckError);
}

// --- ChurnModel: schedule semantics ---

TEST(ChurnModel, DeterministicAndQueryOrderIndependent) {
  const ChurnPlan plan = ChurnPlan::parse(
      "leave=0.15,away_min=2,away_max=5,late_join=0.2,burst=0.3,"
      "burst_round=10,seed=3");
  const ChurnModel a(plan, 16);
  const ChurnModel b(plan, 16);
  for (int p = 0; p < 16; ++p) {
    for (int r = 0; r < 40; ++r) {
      EXPECT_EQ(a.is_live(15 - p, 39 - r), b.is_live(15 - p, 39 - r));
    }
    EXPECT_EQ(a.join_round(p), b.join_round(p));
  }
  ChurnPlan other = plan;
  other.seed = 4;
  const ChurnModel c(other, 16);
  int differing = 0;
  for (int p = 0; p < 16; ++p) {
    for (int r = 0; r < 40; ++r) {
      if (a.is_live(p, r) != c.is_live(p, r)) ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(ChurnModel, EmptyPlanKeepsEveryoneLive) {
  const ChurnModel model(ChurnPlan{}, 8);
  EXPECT_FALSE(model.active());
  for (int p = 0; p < 8; ++p) {
    EXPECT_EQ(model.join_round(p), 0);
    for (int r = 0; r < 20; ++r) EXPECT_TRUE(model.is_live(p, r));
  }
}

TEST(ChurnModel, BurstRemovesTheSelectedCohortForExactlyItsWindow) {
  const ChurnPlan plan =
      ChurnPlan::parse("burst=1.0,burst_round=5,burst_away=3");
  const ChurnModel model(plan, 12);
  for (int p = 0; p < 12; ++p) {
    EXPECT_TRUE(model.is_live(p, 4));
    for (int r = 5; r < 8; ++r) EXPECT_FALSE(model.is_live(p, r));
    EXPECT_TRUE(model.is_live(p, 8));
  }
  // A fractional burst takes some but not all of the fleet.
  const ChurnModel half(ChurnPlan::parse("burst=0.5,burst_round=5"), 64);
  int gone = 0;
  for (int p = 0; p < 64; ++p) {
    if (!half.is_live(p, 5)) ++gone;
  }
  EXPECT_GT(gone, 16);
  EXPECT_LT(gone, 48);
}

TEST(ChurnModel, LateJoinersAreAbsentUntilTheirJoinRound) {
  const ChurnPlan plan = ChurnPlan::parse("late_join=1.0,join_spread=4");
  const ChurnModel model(plan, 32);
  for (int p = 0; p < 32; ++p) {
    const int jr = model.join_round(p);
    EXPECT_GE(jr, 1);
    EXPECT_LE(jr, 4);
    for (int r = 0; r < jr; ++r) EXPECT_FALSE(model.is_live(p, r));
    // No steady churn in the plan: live from the join round on.
    for (int r = jr; r < jr + 5; ++r) EXPECT_TRUE(model.is_live(p, r));
  }
}

TEST(ChurnModel, SteadyStateAbsenceRoughlyMatchesTheEquilibrium) {
  // leave=0.1 with mean away of 3 rounds => absent fraction near
  // 0.1 * 3 / (1 + 0.1 * 3) ~ 0.23 once the process has mixed.
  const ChurnPlan plan = ChurnPlan::parse("leave=0.1,away_min=2,away_max=4");
  const ChurnModel model(plan, 400);
  int absent = 0;
  for (int p = 0; p < 400; ++p) {
    if (!model.is_live(p, 50)) ++absent;
  }
  const double frac = static_cast<double>(absent) / 400.0;
  EXPECT_GT(frac, 0.10);
  EXPECT_LT(frac, 0.40);
}

TEST(ChurnModel, DiurnalPhasesModulateTheLeaveRate) {
  const ChurnPlan plan =
      ChurnPlan::parse("leave=0.1,diurnal=0.5,diurnal_period=10");
  const ChurnModel model(plan, 4);
  // Trough at the period boundary, peak mid-period, periodic.
  EXPECT_LT(model.leave_rate(0), 0.1);
  EXPECT_GT(model.leave_rate(5), 0.1);
  EXPECT_DOUBLE_EQ(model.leave_rate(3), model.leave_rate(13));
  // Without amplitude the rate is flat.
  const ChurnModel flat(ChurnPlan::parse("leave=0.1"), 4);
  EXPECT_DOUBLE_EQ(flat.leave_rate(0), flat.leave_rate(5));
}

// --- ClientRegistry: membership bookkeeping ---

TEST(ClientRegistry, ChurnFreeRoundsReportABaselineNotAJoinWave) {
  ClientRegistry reg(6);
  const ChurnModel quiet(ChurnPlan{}, 6);
  for (int r = 0; r < 5; ++r) {
    const auto mem = reg.begin_round(quiet, r);
    EXPECT_EQ(mem.live, 6);
    EXPECT_EQ(mem.joined, 0);
    EXPECT_EQ(mem.left, 0);
    for (char c : mem.rejoined) EXPECT_EQ(c, 0);
  }
  EXPECT_EQ(reg.total_joins(), 0u);
  EXPECT_EQ(reg.total_leaves(), 0u);
  EXPECT_EQ(reg.info(0).rounds_live, 5);
  EXPECT_EQ(reg.info(0).first_live_round, 0);
}

TEST(ClientRegistry, TracksTransitionsAndRejoinsThroughABurst) {
  const ChurnPlan plan =
      ChurnPlan::parse("burst=1.0,burst_round=2,burst_away=2");
  ClientRegistry reg(4);
  const ChurnModel churn(plan, 4);
  EXPECT_EQ(reg.begin_round(churn, 0).live, 4);
  EXPECT_EQ(reg.begin_round(churn, 1).live, 4);
  const auto gone = reg.begin_round(churn, 2);
  EXPECT_EQ(gone.live, 0);
  EXPECT_EQ(gone.left, 4);
  reg.begin_round(churn, 3);
  const auto back = reg.begin_round(churn, 4);
  EXPECT_EQ(back.live, 4);
  EXPECT_EQ(back.joined, 4);
  // Everyone was seen before the burst: the return is a rejoin, and the
  // soft-sync path will treat their first update back as stale.
  for (char c : back.rejoined) EXPECT_EQ(c, 1);
  EXPECT_EQ(reg.total_joins(), 4u);
  EXPECT_EQ(reg.total_leaves(), 4u);
  EXPECT_EQ(reg.info(1).rounds_absent, 2);
}

TEST(ClientRegistry, SerializeRestoreRoundTripsTheFullState) {
  const ChurnPlan plan = ChurnPlan::parse("leave=0.3,away_min=2,away_max=4");
  ClientRegistry reg(8);
  const ChurnModel churn(plan, 8);
  for (int r = 0; r < 12; ++r) {
    const auto mem = reg.begin_round(churn, r);
    for (int p = 0; p < 8; ++p) {
      if (mem.live_mask[static_cast<std::size_t>(p)] == 0) continue;
      reg.note_dispatch(p, 1.5 + 0.1 * p);
      reg.note_applied(p, r % 3);
    }
  }
  ByteWriter w;
  reg.serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();

  ClientRegistry copy(8);
  ByteReader r(bytes);
  copy.restore(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(copy.total_joins(), reg.total_joins());
  EXPECT_EQ(copy.total_leaves(), reg.total_leaves());
  for (int p = 0; p < 8; ++p) {
    const ClientInfo& a = reg.info(p);
    const ClientInfo& b = copy.info(p);
    EXPECT_EQ(a.live, b.live);
    EXPECT_EQ(a.ever_seen, b.ever_seen);
    EXPECT_EQ(a.first_live_round, b.first_live_round);
    EXPECT_EQ(a.last_live_round, b.last_live_round);
    EXPECT_EQ(a.joins, b.joins);
    EXPECT_EQ(a.leaves, b.leaves);
    EXPECT_EQ(a.rounds_live, b.rounds_live);
    EXPECT_EQ(a.rounds_absent, b.rounds_absent);
    EXPECT_EQ(a.dispatched, b.dispatched);
    EXPECT_EQ(a.updates_applied, b.updates_applied);
    EXPECT_EQ(a.stale_updates, b.stale_updates);
    EXPECT_EQ(a.tau_sum, b.tau_sum);
    EXPECT_EQ(a.max_tau, b.max_tau);
    EXPECT_DOUBLE_EQ(a.latency_ema, b.latency_ema);
    EXPECT_EQ(a.latency_ema_set, b.latency_ema_set);
    // Device profiles re-derive from the id.
    EXPECT_EQ(a.device.name, b.device.name);
  }
  // And the restored registry continues the same membership stream.
  ClientRegistry fresh(8);
  ByteReader r2(bytes);
  fresh.restore(r2);
  for (int r3 = 12; r3 < 16; ++r3) {
    const auto ma = reg.begin_round(churn, r3);
    const auto mb = fresh.begin_round(churn, r3);
    EXPECT_EQ(ma.live, mb.live);
    EXPECT_EQ(ma.joined, mb.joined);
    EXPECT_EQ(ma.left, mb.left);
    EXPECT_EQ(ma.live_mask, mb.live_mask);
    EXPECT_EQ(ma.rejoined, mb.rejoined);
  }
}

// --- DeadlineEstimator: windowed-quantile deadlines ---

TEST(DeadlineEstimator, ColdOrDisabledFallsBackToInfinity) {
  DeadlineEstimator est;
  AdaptiveTimeoutConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 4;
  EXPECT_TRUE(std::isinf(est.deadline(cfg)));
  for (int i = 0; i < 3; ++i) est.add_sample(1.0, cfg.window);
  EXPECT_TRUE(std::isinf(est.deadline(cfg)));  // still below min_samples
  est.add_sample(1.0, cfg.window);
  EXPECT_TRUE(std::isfinite(est.deadline(cfg)));
  cfg.enabled = false;
  EXPECT_TRUE(std::isinf(est.deadline(cfg)));  // warm but disabled
}

TEST(DeadlineEstimator, QuantileTimesSlackWithClamps) {
  DeadlineEstimator est;
  AdaptiveTimeoutConfig cfg;
  cfg.enabled = true;
  cfg.quantile = 0.90;
  cfg.slack = 1.5;
  cfg.min_samples = 4;
  for (int i = 1; i <= 10; ++i) {
    est.add_sample(static_cast<double>(i), cfg.window);
  }
  // p90 of 1..10 is the 9th order statistic (ceil(0.9*10) = 9): 9 * 1.5.
  EXPECT_DOUBLE_EQ(est.deadline(cfg), 13.5);
  cfg.ceil_s = 5.0;
  EXPECT_DOUBLE_EQ(est.deadline(cfg), 5.0);
  cfg.ceil_s = 0.0;
  cfg.floor_s = 20.0;
  EXPECT_DOUBLE_EQ(est.deadline(cfg), 20.0);
}

TEST(DeadlineEstimator, WindowEvictsOldestAndRoundTripsSerialization) {
  DeadlineEstimator est;
  for (int i = 0; i < 10; ++i) est.add_sample(static_cast<double>(i), 4);
  EXPECT_EQ(est.samples(), 4u);
  AdaptiveTimeoutConfig cfg;
  cfg.enabled = true;
  cfg.min_samples = 1;
  cfg.slack = 1.0;
  cfg.floor_s = 0.0;
  // Window holds {6, 7, 8, 9}; p90 picks the last.
  EXPECT_DOUBLE_EQ(est.deadline(cfg), 9.0);

  ByteWriter w;
  est.serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();
  DeadlineEstimator copy;
  ByteReader r(bytes);
  copy.restore(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(copy.samples(), est.samples());
  EXPECT_DOUBLE_EQ(copy.deadline(cfg), est.deadline(cfg));
}

// --- DegradationController: the hysteresis ladder ---

TEST(DegradationController, StepsDownOnStreaksAndReArmsBetweenModes) {
  DegradationController ctl;
  DegradeConfig cfg;
  cfg.max_mode = 3;
  cfg.trip_rounds = 2;
  cfg.recover_rounds = 3;

  EXPECT_FALSE(ctl.observe(true, cfg).changed);  // streak 1 of 2
  const auto down = ctl.observe(true, cfg);
  EXPECT_TRUE(down.changed);
  EXPECT_EQ(down.from, DegradeMode::kNormal);
  EXPECT_EQ(down.to, DegradeMode::kRelaxDeadline);
  // The streak re-arms: one more bad round is not enough for mode 2.
  EXPECT_FALSE(ctl.observe(true, cfg).changed);
  EXPECT_TRUE(ctl.observe(true, cfg).changed);
  EXPECT_EQ(ctl.mode(), DegradeMode::kShrinkCohort);
  ctl.observe(true, cfg);
  ctl.observe(true, cfg);
  EXPECT_EQ(ctl.mode(), DegradeMode::kPartialQuorum);
  // At the configured floor further bad rounds change nothing.
  EXPECT_FALSE(ctl.observe(true, cfg).changed);
  EXPECT_FALSE(ctl.observe(true, cfg).changed);
  EXPECT_EQ(ctl.entries(DegradeMode::kRelaxDeadline), 1);
  EXPECT_EQ(ctl.entries(DegradeMode::kShrinkCohort), 1);
  EXPECT_EQ(ctl.entries(DegradeMode::kPartialQuorum), 1);

  // Recovery: recover_rounds consecutive good rounds per step.
  ctl.observe(false, cfg);
  ctl.observe(false, cfg);
  const auto up = ctl.observe(false, cfg);
  EXPECT_TRUE(up.changed);
  EXPECT_EQ(up.to, DegradeMode::kShrinkCohort);
  // A bad round mid-recovery resets the good streak.
  ctl.observe(false, cfg);
  ctl.observe(true, cfg);
  ctl.observe(false, cfg);
  ctl.observe(false, cfg);
  EXPECT_EQ(ctl.mode(), DegradeMode::kShrinkCohort);
  ctl.observe(false, cfg);
  EXPECT_EQ(ctl.mode(), DegradeMode::kRelaxDeadline);
  for (int i = 0; i < 3; ++i) ctl.observe(false, cfg);
  EXPECT_EQ(ctl.mode(), DegradeMode::kNormal);
  EXPECT_EQ(ctl.transitions(), 6);
}

TEST(DegradationController, MaxModeCapsTheLadderAndZeroDisablesDescent) {
  DegradationController ctl;
  DegradeConfig shallow;
  shallow.max_mode = 1;
  shallow.trip_rounds = 1;
  ctl.observe(true, shallow);
  EXPECT_EQ(ctl.mode(), DegradeMode::kRelaxDeadline);
  for (int i = 0; i < 5; ++i) ctl.observe(true, shallow);
  EXPECT_EQ(ctl.mode(), DegradeMode::kRelaxDeadline);

  // Resuming with a lower max_mode clamps an inherited deeper mode.
  DegradeConfig off;
  off.max_mode = 0;
  ctl.observe(true, off);
  EXPECT_EQ(ctl.mode(), DegradeMode::kNormal);
}

TEST(DegradationController, SerializeRestoreRoundTripsTheLadderState) {
  DegradationController ctl;
  DegradeConfig cfg;
  cfg.max_mode = 3;
  cfg.trip_rounds = 2;
  for (int i = 0; i < 5; ++i) ctl.observe(true, cfg);
  ctl.observe(false, cfg);
  ByteWriter w;
  ctl.serialize(w);
  const std::vector<std::uint8_t> bytes = w.take();

  DegradationController copy;
  ByteReader r(bytes);
  copy.restore(r);
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(copy.mode(), ctl.mode());
  EXPECT_EQ(copy.transitions(), ctl.transitions());
  for (int m = 0; m < 4; ++m) {
    EXPECT_EQ(copy.entries(static_cast<DegradeMode>(m)),
              ctl.entries(static_cast<DegradeMode>(m)));
  }
  // Identical futures: feed both the same outcomes.
  for (int i = 0; i < 4; ++i) {
    const auto a = ctl.observe(i % 2 == 0, cfg);
    const auto b = copy.observe(i % 2 == 0, cfg);
    EXPECT_EQ(a.changed, b.changed);
    EXPECT_EQ(ctl.mode(), copy.mode());
  }
}

// --- end-to-end: the real search loop under churn ---

SearchConfig tiny_config() {
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = 4;
  cfg.seed = 7;
  return cfg;
}

TrainTest tiny_data(Rng& rng) {
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  return make_synth_c10(spec, rng);
}

TEST(ChurnSearch, ChurnFreeRunsReportFullMembershipAndStayMode0) {
  Rng rng(61);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants,
                             rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.degrade.max_mode = 3;  // controller armed but never provoked
  const auto records = search.run_search(6, opts);
  for (const auto& r : records) {
    EXPECT_EQ(r.live, 4);
    EXPECT_EQ(r.joined, 0);
    EXPECT_EQ(r.left, 0);
    EXPECT_EQ(r.cohort, 4);
    EXPECT_EQ(r.shed, 0);
    EXPECT_EQ(r.degrade_mode, 0);
    EXPECT_TRUE(r.degrade_transition.empty());
  }
  EXPECT_EQ(search.degrade_mode(), DegradeMode::kNormal);
  EXPECT_EQ(search.degrade_transitions(), 0);
  EXPECT_EQ(search.registry().total_joins(), 0u);
  EXPECT_EQ(search.registry().total_leaves(), 0u);
}

TEST(ChurnSearch, ChurnLayerIsBitIdenticalWhenInert) {
  Rng rng(62);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  auto parts = iid_partition(tt.train.size(), cfg.schedule.num_participants,
                             rng);
  SearchOptions plain;
  SearchOptions armed;
  armed.degrade.max_mode = 3;  // no churn, no timeout: never trips
  FederatedSearch a(cfg, tt.train, parts);
  FederatedSearch b(cfg, tt.train, parts);
  const auto ra = a.run_search(8, plain);
  const auto rb = b.run_search(8, armed);
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_DOUBLE_EQ(ra[i].mean_reward, rb[i].mean_reward);
    EXPECT_DOUBLE_EQ(ra[i].moving_avg, rb[i].moving_avg);
    EXPECT_EQ(ra[i].arrived, rb[i].arrived);
  }
  EXPECT_EQ(a.supernet().flat_values(), b.supernet().flat_values());
  EXPECT_EQ(a.policy().alpha().flatten(), b.policy().alpha().flatten());
}

TEST(ChurnSearch, RejoiningClientsComeBackStaleUnderSoftSync) {
  Rng rng(63);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 6;
  auto parts = iid_partition(tt.train.size(), 6, rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::none();  // churn is the only source
  opts.quorum = 0.5;
  opts.churn_plan = ChurnPlan::parse("leave=0.25,away_min=2,away_max=4,seed=5");
  const auto records = search.run_search(16, opts);
  int joined = 0, left = 0, stale = 0;
  for (const auto& r : records) {
    joined += r.joined;
    left += r.left;
    stale += r.stale_arrived;
    EXPECT_EQ(r.live + (6 - r.live), 6);
  }
  EXPECT_GT(left, 0);
  EXPECT_GT(joined, 0);
  // Every rejoin funnels through the staleness/DC path at least once.
  EXPECT_GT(stale, 0);
  // Churned-away clients are not faults: the ledger never saw them.
  EXPECT_EQ(search.fault_stats().injected_total(), 0u);
  // total_joins counts true rejoins only; rec.joined also includes clients
  // whose *first* appearance came after the baseline round.
  EXPECT_GT(search.registry().total_joins(), 0u);
  EXPECT_LE(search.registry().total_joins(),
            static_cast<std::uint64_t>(joined));
  EXPECT_EQ(search.registry().total_leaves(),
            static_cast<std::uint64_t>(left));
}

// The acceptance campaign: 20% steady churn plus one burst mass-leave.
// The search must complete, every degradation mode must be entered AND
// exited (visible in the per-round records), the final reward must stay
// within tolerance of the churn-free run, and a kill-and-resume mid-burst
// must reproduce the round stream bit for bit.
TEST(ChurnCampaign, BurstMassLeaveWalksTheFullLadderAndRecovers) {
  Rng rng(64);
  SynthSpec spec;
  spec.train_size = 400;
  spec.test_size = 40;
  spec.image_size = 8;
  spec.noise_std = 0.05F;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 10;
  cfg.schedule.batch_size = 16;
  auto parts = iid_partition(tt.train.size(), 10, rng);

  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::none();
  opts.quorum = 0.7;
  opts.churn_plan = ChurnPlan::parse(
      "leave=0.08,away_min=2,away_max=4,burst=0.7,burst_round=14,"
      "burst_away=10,seed=6");
  opts.adaptive_timeout.enabled = true;
  opts.adaptive_timeout.window = 40;
  opts.degrade.max_mode = 3;
  opts.degrade.trip_rounds = 2;
  opts.degrade.recover_rounds = 3;
  const int kRounds = 48;

  auto run_clean = [&] {
    FederatedSearch search(cfg, tt.train, parts);
    search.run_warmup(8);
    SearchOptions clean = opts;
    clean.churn_plan = ChurnPlan{};
    return search.run_search(kRounds, clean).back().moving_avg;
  };

  FederatedSearch search(cfg, tt.train, parts);
  search.run_warmup(8);
  const auto records = search.run_search(kRounds, opts);
  ASSERT_EQ(records.size(), static_cast<std::size_t>(kRounds));

  // The search ends with finite, usable parameters.
  for (float v : search.supernet().flat_values()) {
    ASSERT_TRUE(std::isfinite(v));
  }
  for (float v : search.policy().alpha().flatten()) {
    ASSERT_TRUE(std::isfinite(v));
  }

  // Every mode 1..3 was entered, and exited again later.
  for (int m = 1; m <= 3; ++m) {
    int entered_at = -1;
    bool exited = false;
    for (const auto& r : records) {
      if (r.degrade_mode == m && entered_at < 0) entered_at = r.round;
      if (entered_at >= 0 && r.round > entered_at && r.degrade_mode < m) {
        exited = true;
      }
    }
    EXPECT_GE(entered_at, 0) << "mode " << m << " never entered";
    EXPECT_TRUE(exited) << "mode " << m << " never exited";
  }
  // Transitions are recorded as from->to edges in the round stream.
  int transition_records = 0;
  bool saw_shed = false;
  for (const auto& r : records) {
    if (!r.degrade_transition.empty()) ++transition_records;
    if (r.shed > 0) saw_shed = true;
    EXPECT_LE(r.cohort, r.live);
  }
  EXPECT_EQ(transition_records, search.degrade_transitions());
  EXPECT_GE(transition_records, 6);  // down 3 times + up 3 times minimum
  EXPECT_TRUE(saw_shed);  // mode 2 visibly shrank the cohort

  // The burst actually bit: live population collapsed during the window.
  int min_live = cfg.schedule.num_participants;
  for (const auto& r : records) min_live = std::min(min_live, r.live);
  EXPECT_LE(min_live, 4);

  // Degradation held the trajectory together: final moving-average reward
  // within 10% of the churn-free run.
  const double clean_avg = run_clean();
  EXPECT_GT(clean_avg, 0.0);
  EXPECT_LE(std::abs(records.back().moving_avg - clean_avg),
            0.10 * clean_avg)
      << "clean " << clean_avg << " vs churny "
      << records.back().moving_avg;
}

void expect_identical_churn(const RoundRecord& a, const RoundRecord& b) {
  EXPECT_EQ(a.round, b.round);
  EXPECT_DOUBLE_EQ(a.mean_reward, b.mean_reward);
  EXPECT_DOUBLE_EQ(a.moving_avg, b.moving_avg);
  EXPECT_EQ(a.arrived, b.arrived);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.live, b.live);
  EXPECT_EQ(a.joined, b.joined);
  EXPECT_EQ(a.left, b.left);
  EXPECT_EQ(a.cohort, b.cohort);
  EXPECT_EQ(a.shed, b.shed);
  EXPECT_DOUBLE_EQ(a.deadline_s, b.deadline_s);
  EXPECT_EQ(a.degrade_mode, b.degrade_mode);
  EXPECT_EQ(a.degrade_transition, b.degrade_transition);
  EXPECT_EQ(a.stale_arrived, b.stale_arrived);
  EXPECT_EQ(a.late, b.late);
  EXPECT_EQ(a.partial_quorum, b.partial_quorum);
  EXPECT_DOUBLE_EQ(a.commit_latency_s, b.commit_latency_s);
}

TEST(ChurnCampaign, KillAndResumeMidBurstIsBitIdentical) {
  Rng rng(65);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 6;
  auto parts = iid_partition(tt.train.size(), 6, rng);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::none();
  opts.quorum = 0.7;
  opts.churn_plan = ChurnPlan::parse(
      "leave=0.1,away_min=2,away_max=4,burst=0.6,burst_round=5,"
      "burst_away=6,seed=8");
  opts.adaptive_timeout.enabled = true;
  opts.degrade.max_mode = 3;
  opts.degrade.trip_rounds = 2;
  opts.degrade.recover_rounds = 3;

  FederatedSearch reference(cfg, tt.train, parts);
  reference.run_warmup(2);
  const auto full = reference.run_search(16, opts);

  // Checkpoint at round 8 — inside the burst, with the controller
  // degraded and the deadline window part-filled.
  std::vector<std::uint8_t> frozen;
  {
    FederatedSearch first(cfg, tt.train, parts);
    first.run_warmup(2);
    const auto head = first.run_search(8, opts);
    for (std::size_t i = 0; i < head.size(); ++i) {
      SCOPED_TRACE("head round " + std::to_string(i));
      expect_identical_churn(full[i], head[i]);
    }
    frozen = first.checkpoint().serialize();
  }
  FederatedSearch resumed(cfg, tt.train, parts);
  resumed.restore(SearchCheckpoint::deserialize(frozen));
  const auto tail = resumed.run_search(8, opts);
  ASSERT_EQ(tail.size(), 8u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    SCOPED_TRACE("tail round " + std::to_string(i));
    expect_identical_churn(full[8 + i], tail[i]);
  }
  EXPECT_EQ(reference.supernet().flat_values(),
            resumed.supernet().flat_values());
  EXPECT_EQ(reference.policy().alpha().flatten(),
            resumed.policy().alpha().flatten());
  EXPECT_EQ(reference.degrade_mode(), resumed.degrade_mode());
  EXPECT_EQ(reference.degrade_transitions(), resumed.degrade_transitions());
  EXPECT_EQ(reference.registry().total_joins(),
            resumed.registry().total_joins());
  EXPECT_EQ(reference.registry().total_leaves(),
            resumed.registry().total_leaves());
}

TEST(ChurnCampaign, ByzantineScreenHoldsUnderChurn) {
  // Faults and churn together: the exactly-once fault ledger and the
  // screening defenses must not double-count or miss under membership
  // changes (a churned-away client is not a fault).
  Rng rng(66);
  TrainTest tt = tiny_data(rng);
  SearchConfig cfg = tiny_config();
  cfg.schedule.num_participants = 8;
  auto parts = iid_partition(tt.train.size(), 8, rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.quorum = 0.6;
  opts.churn_plan = ChurnPlan::parse("leave=0.2,away_min=2,away_max=4,seed=9");
  opts.fault_plan =
      FaultPlan::parse("corrupt=0.2,divergent=0.25,divergent_p=1.0,seed=10");
  opts.degrade.max_mode = 3;
  const auto records = search.run_search(20, opts);
  const FaultStats& stats = search.fault_stats();
  EXPECT_GT(stats.injected_total(), 0u);
  EXPECT_EQ(stats.injected_total(), stats.accounted());
  int rejected = 0;
  for (const auto& r : records) rejected += r.rejected;
  EXPECT_GT(rejected, 0);  // screening still firing under churn
  for (float v : search.supernet().flat_values()) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

}  // namespace
}  // namespace fms
