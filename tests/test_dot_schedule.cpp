// Tests for the DOT export and the learning-rate schedules.
#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "src/core/retrain.h"
#include "src/data/synth.h"
#include "src/nas/discrete_net.h"
#include "src/nas/dot_export.h"
#include "src/nn/lr_schedule.h"

namespace fms {
namespace {

Genotype sample_genotype() {
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (std::size_t e = 0; e < a.size(); ++e) {
    a[e].fill(0.0F);
    a[e][4 + e % 4] = 3.0F;  // a mix of conv ops
  }
  return discretize(a, a, 2);
}

TEST(DotExport, ContainsBothCellsAndOpLabels) {
  Genotype g = sample_genotype();
  const std::string dot = genotype_to_dot(g);
  EXPECT_NE(dot.find("digraph genotype"), std::string::npos);
  EXPECT_NE(dot.find("cluster_normal"), std::string::npos);
  EXPECT_NE(dot.find("cluster_reduce"), std::string::npos);
  EXPECT_NE(dot.find("c_{k-2}"), std::string::npos);
  EXPECT_NE(dot.find("concat"), std::string::npos);
  // Each of the 2*nodes edges per cell appears with its op label.
  bool found_op = dot.find("sep_conv_3x3") != std::string::npos ||
                  dot.find("sep_conv_5x5") != std::string::npos ||
                  dot.find("dil_conv_3x3") != std::string::npos ||
                  dot.find("dil_conv_5x5") != std::string::npos;
  EXPECT_TRUE(found_op);
}

TEST(DotExport, WritesFile) {
  const std::string path = ::testing::TempDir() + "/fms_geno.dot";
  write_dot_file(path, sample_genotype());
  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::string first_line;
  std::getline(f, first_line);
  EXPECT_NE(first_line.find("digraph"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(DotExport, RejectsMalformedGenotype) {
  Genotype g;
  g.nodes = 2;  // but no edges
  EXPECT_THROW(genotype_to_dot(g), CheckError);
}

TEST(LrSchedule, ConstantIsConstant) {
  ConstantLr s(0.1F);
  EXPECT_FLOAT_EQ(s.lr_at(0, 100), 0.1F);
  EXPECT_FLOAT_EQ(s.lr_at(99, 100), 0.1F);
}

TEST(LrSchedule, CosineAnnealsFromMaxToMin) {
  CosineLr s(1.0F, 0.1F);
  EXPECT_FLOAT_EQ(s.lr_at(0, 100), 1.0F);
  EXPECT_NEAR(s.lr_at(50, 100), (1.0F + 0.1F) / 2.0F, 1e-5F);
  EXPECT_NEAR(s.lr_at(100, 100), 0.1F, 1e-5F);
  // Monotone non-increasing.
  float prev = 2.0F;
  for (int t = 0; t <= 100; t += 5) {
    const float lr = s.lr_at(t, 100);
    EXPECT_LE(lr, prev + 1e-6F);
    prev = lr;
  }
}

TEST(LrSchedule, CosineClampsBeyondHorizon) {
  CosineLr s(1.0F);
  EXPECT_NEAR(s.lr_at(150, 100), 0.0F, 1e-6F);
}

TEST(LrSchedule, CentralizedTrainAcceptsSchedule) {
  Rng rng(1);
  SynthSpec spec;
  spec.train_size = 60;
  spec.test_size = 20;
  spec.image_size = 8;
  TrainTest tt = make_synth_c10(spec, rng);
  SupernetConfig cfg;
  cfg.num_cells = 3;
  cfg.num_nodes = 2;
  cfg.stem_channels = 4;
  cfg.image_size = 8;
  Rng net_rng(2);
  DiscreteNet net(sample_genotype(), cfg, net_rng);
  CosineLr schedule(0.05F);
  Rng train_rng(3);
  RetrainResult res =
      centralized_train(net, tt.train, tt.test, 3, 16, SGD::Options{},
                        nullptr, train_rng, 1, &schedule);
  EXPECT_EQ(res.curve.size(), 3u);
  EXPECT_GE(res.final_test_accuracy, 0.0);
}

}  // namespace
}  // namespace fms
