// Known-bad: two decision streams share a salt value.
#include <cstdint>

constexpr std::uint64_t kSaltAlpha = 0x10;
constexpr std::uint64_t kSaltBeta = 0x10;
