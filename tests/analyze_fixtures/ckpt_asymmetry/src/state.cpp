// Known-bad: write/read op sequences diverge in kind and in count.
#include "bytes.h"

void Foo::serialize(ByteWriter& w) const {
  w.write(magic_);
  w.write_vector(data_);
  w.write_string(name_);
}

void Foo::deserialize(ByteReader& r) {
  magic_ = r.read<int>();
  name_ = r.read_string();
}

void Bar::checkpoint(ByteWriter& w) const {
  w.write(a_);
  w.write(b_);
}

void Bar::restore(ByteReader& r) {
  a_ = r.read<int>();
}
