// Known-bad: an undocumented metric key and an undocumented detector.
#include "obs.h"

void emit(Registry& reg) {
  reg.counter("fms.good.count").add(1);
  reg.counter("fms.bad.count").add(1);
}

const char* kDetectorNames[] = {
    "alpha",
    "beta",
};
