// Suppression coverage for every code-side check, in both the
// comment-line-above and same-line annotation forms.
#include <cstdint>

constexpr std::uint64_t kSaltOne = 0x21;
// fms-analyze: allow(salt-collision) -- intentional shared stream
constexpr std::uint64_t kSaltTwo = 0x21;  // fms-analyze: allow(salt-unregistered)

// fms-analyze: allow(checkpoint-asymmetry) -- schema migration in flight
void Foo::serialize(ByteWriter& w) const {
  w.write(a_);
  w.write(b_);
}

void Foo::deserialize(ByteReader& r) {
  a_ = r.read<int>();
}

void emit(Registry& reg) {
  // fms-analyze: allow(metric-undocumented) -- experiment-local key
  reg.counter("fms.tmp.count").add(1);
}

const char* kDetectorNames[] = {
    "experimental",  // fms-analyze: allow(detector-undocumented)
};
