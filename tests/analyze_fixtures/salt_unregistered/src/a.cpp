// Known-bad: a new stream without a registry row, and a value drift.
#include <cstdint>

constexpr std::uint64_t kSaltNew = 0x42;
constexpr std::uint64_t kSaltOld = 0x08;
