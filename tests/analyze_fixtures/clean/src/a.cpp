// Fully consistent mini-tree: registry, checkpoint pair, and the
// documented metric/detector tables all agree.
#include <cstdint>

constexpr std::uint64_t kSaltClean = 0x99;

void Foo::serialize(ByteWriter& w) const {
  w.write(magic_);
  w.write_string(name_);
  nested_.serialize(w);
}

void Foo::deserialize(ByteReader& r) {
  magic_ = r.read<int>();
  name_ = r.read_string();
  nested_.restore(r);
}

void emit(Registry& reg) {
  reg.counter("fms.clean.count").add(1);
}

const char* kDetectorNames[] = {"steady"};
