// The only surviving salt; the registry still lists a deleted one.
#include <cstdint>

constexpr std::uint64_t kSaltKept = 0x01;
