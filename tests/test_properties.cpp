// Property-based (parameterized) test sweeps over the library's core
// invariants: convolution gradients across the full spec space, candidate
// op contracts, policy invariants, partition covers, serialization
// round-trips, and delay-compensation algebra.
#include <tuple>

#include "gtest/gtest.h"
#include "src/data/dataset.h"
#include "src/dc/compensation.h"
#include "src/fed/messages.h"
#include "src/nas/supernet.h"
#include "src/rl/policy.h"
#include "src/tensor/ops.h"

namespace fms {
namespace {

// ---------------------------------------------------------------------
// Conv2d gradient correctness across (stride, padding, dilation, groups).
// ---------------------------------------------------------------------
using ConvParams = std::tuple<int, int, int, int>;  // stride, pad, dil, groups

class ConvGradProperty : public ::testing::TestWithParam<ConvParams> {};

TEST_P(ConvGradProperty, MatchesFiniteDifference) {
  const auto [stride, pad, dil, groups] = GetParam();
  Conv2dSpec spec{stride, pad, dil, groups};
  const int cin = 2 * groups, cout = 2 * groups, k = 3, hw = 7;
  Rng rng(1234 + stride * 7 + pad * 11 + dil * 13 + groups * 17);
  Tensor x = Tensor::randn({1, cin, hw, hw}, rng);
  Tensor w = Tensor::randn({cout, cin / groups, k, k}, rng, 0.5F);
  Tensor y = conv2d_forward(x, w, spec);
  Tensor gy = Tensor::randn(y.shape(), rng);
  Conv2dGrads grads = conv2d_backward(x, w, gy, spec);
  auto objective = [&](const Tensor& xx, const Tensor& ww) {
    Tensor yy = conv2d_forward(xx, ww, spec);
    double s = 0.0;
    for (std::size_t i = 0; i < yy.numel(); ++i) s += yy[i] * gy[i];
    return s;
  };
  const float eps = 1e-2F;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t xi = (i * 37) % x.numel();
    Tensor xp = x, xm = x;
    xp[xi] += eps;
    xm[xi] -= eps;
    EXPECT_NEAR(grads.grad_x[xi],
                (objective(xp, w) - objective(xm, w)) / (2.0 * eps), 5e-2);
    const std::size_t wi = (i * 29) % w.numel();
    Tensor wp = w, wm = w;
    wp[wi] += eps;
    wm[wi] -= eps;
    EXPECT_NEAR(grads.grad_w[wi],
                (objective(x, wp) - objective(x, wm)) / (2.0 * eps), 5e-2);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SpecSweep, ConvGradProperty,
    ::testing::Values(ConvParams{1, 0, 1, 1}, ConvParams{1, 1, 1, 1},
                      ConvParams{2, 1, 1, 1}, ConvParams{1, 2, 2, 1},
                      ConvParams{2, 2, 2, 1}, ConvParams{1, 1, 1, 2},
                      ConvParams{2, 1, 1, 2}, ConvParams{1, 2, 2, 2}));

// ---------------------------------------------------------------------
// Candidate op contracts: shape, gradient shape, and gradient flow for
// every (op, stride) combination.
// ---------------------------------------------------------------------
using OpParams = std::tuple<int, int>;  // op index, stride

class CandidateOpProperty : public ::testing::TestWithParam<OpParams> {};

TEST_P(CandidateOpProperty, ShapeAndGradContract) {
  const auto [op_idx, stride] = GetParam();
  Rng rng(77 + op_idx * 3 + stride);
  const int c = 4, hw = 8;
  auto op = make_candidate_op(static_cast<OpType>(op_idx), c, stride, rng);
  Tensor x = Tensor::randn({2, c, hw, hw}, rng);
  Tensor y = op->forward(x, true);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), c);
  EXPECT_EQ(y.dim(2), hw / stride);
  EXPECT_EQ(y.dim(3), hw / stride);
  Tensor gy = Tensor::randn(y.shape(), rng);
  Tensor gx = op->backward(gy);
  EXPECT_EQ(gx.shape(), x.shape());
  if (static_cast<OpType>(op_idx) == OpType::kZero) {
    EXPECT_FLOAT_EQ(gx.l2_norm(), 0.0F);  // zero op blocks gradient
  } else {
    EXPECT_GT(gx.l2_norm(), 0.0F);  // every other op passes gradient
  }
}

INSTANTIATE_TEST_SUITE_P(
    OpsTimesStrides, CandidateOpProperty,
    ::testing::Combine(::testing::Range(0, kNumOps),
                       ::testing::Values(1, 2)));

// ---------------------------------------------------------------------
// Composite module gradient checks: every DARTS building block must
// backpropagate correctly through its full stack (conv+BN+ReLU chains).
// ---------------------------------------------------------------------
using CompositeParams = std::tuple<int, int>;  // factory index, channels

class CompositeGradProperty
    : public ::testing::TestWithParam<CompositeParams> {};

TEST_P(CompositeGradProperty, InputGradMatchesFiniteDifference) {
  const auto [factory, channels] = GetParam();
  Rng rng(4242 + factory * 3 + channels);
  std::unique_ptr<Module> m;
  switch (factory) {
    case 0: m = make_relu_conv_bn(channels, channels, 1, 1, 0, rng); break;
    case 1: m = make_sep_conv(channels, 3, 1, rng); break;
    case 2: m = make_sep_conv(channels, 5, 1, rng); break;
    case 3: m = make_dil_conv(channels, 3, 1, rng); break;
    case 4: m = make_dil_conv(channels, 5, 1, rng); break;
    case 5: m = make_factorized_reduce(channels, channels, rng); break;
    default: FAIL();
  }
  Tensor x = Tensor::randn({2, channels, 6, 6}, rng);
  // Every factory starts with a ReLU; keep inputs away from the kink at 0
  // so the central finite difference does not straddle it.
  for (std::size_t i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.05F) x[i] = x[i] >= 0.0F ? 0.05F : -0.05F;
  }
  Tensor y = m->forward(x, true);
  Tensor gy = Tensor::randn(y.shape(), rng);
  m->zero_grad();
  Tensor gx = m->backward(gy);
  ASSERT_EQ(gx.shape(), x.shape());
  auto objective = [&](const Tensor& xx) {
    Tensor yy = m->forward(xx, true);
    double s = 0.0;
    for (std::size_t i = 0; i < yy.numel(); ++i) s += yy[i] * gy[i];
    return s;
  };
  const float eps = 1e-2F;
  for (std::size_t i = 0; i < 8; ++i) {
    const std::size_t xi = (i * 41) % x.numel();
    Tensor xp = x, xm = x;
    xp[xi] += eps;
    xm[xi] -= eps;
    EXPECT_NEAR(gx[xi], (objective(xp) - objective(xm)) / (2.0 * eps), 8e-2)
        << "factory " << factory << " input " << xi;
  }
}

INSTANTIATE_TEST_SUITE_P(FactorySweep, CompositeGradProperty,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(2, 4)));

// ---------------------------------------------------------------------
// Policy invariants across seeds and edge counts.
// ---------------------------------------------------------------------
using PolicyParams = std::tuple<int, int>;  // num_edges, seed

class PolicyProperty : public ::testing::TestWithParam<PolicyParams> {};

TEST_P(PolicyProperty, SampledMasksAreValidAndGradRowsSumZero) {
  const auto [edges, seed] = GetParam();
  AlphaOptConfig cfg;
  ArchPolicy policy(edges, cfg);
  Rng rng(static_cast<std::uint64_t>(seed));
  AlphaPair a = AlphaPair::zeros(edges);
  for (auto& row : a.normal)
    for (auto& v : row) v = rng.normal(0.0F, 2.0F);
  for (auto& row : a.reduce)
    for (auto& v : row) v = rng.normal(0.0F, 2.0F);
  policy.set_alpha(a);
  for (int trial = 0; trial < 10; ++trial) {
    Mask m = policy.sample(rng);
    ASSERT_EQ(m.normal.size(), static_cast<std::size_t>(edges));
    for (int op : m.normal) {
      EXPECT_GE(op, 0);
      EXPECT_LT(op, kNumOps);
    }
    // log p(g) <= 0 always.
    EXPECT_LE(policy.log_prob(m), 1e-9);
    AlphaPair g = policy.log_prob_grad(m);
    for (const auto& row : g.normal) {
      float sum = 0.0F;
      for (float v : row) sum += v;
      EXPECT_NEAR(sum, 0.0F, 1e-5F);
    }
    for (const auto& row : g.reduce) {
      float sum = 0.0F;
      for (float v : row) sum += v;
      EXPECT_NEAR(sum, 0.0F, 1e-5F);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(EdgeAndSeedSweep, PolicyProperty,
                         ::testing::Combine(::testing::Values(2, 5, 9, 14),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------
// Partition cover property across (n, k, beta).
// ---------------------------------------------------------------------
using PartitionParams = std::tuple<int, int, double>;

class PartitionProperty : public ::testing::TestWithParam<PartitionParams> {};

TEST_P(PartitionProperty, DirichletPartitionIsExactCover) {
  const auto [n, k, beta] = GetParam();
  Rng rng(9000 + static_cast<std::uint64_t>(n + k));
  std::vector<int> labels;
  for (int i = 0; i < n; ++i) labels.push_back(i % 10);
  auto parts = dirichlet_partition(labels, 10, k, beta, rng);
  ASSERT_EQ(parts.size(), static_cast<std::size_t>(k));
  std::vector<int> seen(static_cast<std::size_t>(n), 0);
  for (const auto& p : parts) {
    EXPECT_FALSE(p.empty());
    for (int idx : p) {
      ASSERT_GE(idx, 0);
      ASSERT_LT(idx, n);
      ++seen[static_cast<std::size_t>(idx)];
    }
  }
  for (int c : seen) EXPECT_EQ(c, 1);  // each index exactly once
}

INSTANTIATE_TEST_SUITE_P(
    SizeSweep, PartitionProperty,
    ::testing::Values(PartitionParams{200, 5, 0.5},
                      PartitionParams{500, 10, 0.5},
                      PartitionParams{500, 10, 0.1},
                      PartitionParams{1000, 20, 0.5},
                      PartitionParams{1000, 50, 1.0}));

// ---------------------------------------------------------------------
// Message serialization round-trip across random payload sizes.
// ---------------------------------------------------------------------
class MessageProperty : public ::testing::TestWithParam<int> {};

TEST_P(MessageProperty, RoundTripPreservesEverything) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  SubmodelMsg msg;
  msg.round = rng.randint(0, 10000);
  const int edges = rng.randint(1, 20);
  for (int e = 0; e < edges; ++e) {
    msg.mask.normal.push_back(rng.randint(0, kNumOps - 1));
    msg.mask.reduce.push_back(rng.randint(0, kNumOps - 1));
  }
  const int vals = rng.randint(0, 5000);
  for (int i = 0; i < vals; ++i) msg.values.push_back(rng.normal());
  SubmodelMsg back = SubmodelMsg::deserialize(msg.serialize());
  EXPECT_EQ(back.round, msg.round);
  EXPECT_EQ(back.mask.normal, msg.mask.normal);
  EXPECT_EQ(back.mask.reduce, msg.mask.reduce);
  EXPECT_EQ(back.values, msg.values);

  UpdateMsg upd;
  upd.round = msg.round;
  upd.participant = rng.randint(0, 100);
  upd.reward = rng.uniform();
  upd.loss = rng.uniform(0.0F, 10.0F);
  upd.mask = msg.mask;
  upd.grads = msg.values;
  UpdateMsg uback = UpdateMsg::deserialize(upd.serialize());
  EXPECT_EQ(uback.participant, upd.participant);
  EXPECT_EQ(uback.grads, upd.grads);
  EXPECT_FLOAT_EQ(uback.reward, upd.reward);
}

INSTANTIATE_TEST_SUITE_P(SeedSweep, MessageProperty,
                         ::testing::Range(1, 11));

// ---------------------------------------------------------------------
// Delay-compensation algebra across lambda values.
// ---------------------------------------------------------------------
class CompensationProperty : public ::testing::TestWithParam<float> {};

TEST_P(CompensationProperty, LambdaZeroIsIdentityAndDriftScalesCorrection) {
  const float lambda = GetParam();
  Rng rng(555);
  std::vector<float> h, fresh, stale;
  for (int i = 0; i < 64; ++i) {
    h.push_back(rng.normal());
    stale.push_back(rng.normal());
    fresh.push_back(stale.back() + rng.normal(0.0F, 0.1F));
  }
  auto out = compensate_weight_gradient(h, fresh, stale, lambda);
  for (std::size_t i = 0; i < h.size(); ++i) {
    const float expected = h[i] + lambda * h[i] * h[i] * (fresh[i] - stale[i]);
    EXPECT_FLOAT_EQ(out[i], expected);
    // fms-lint: allow(float-eq) -- lambda iterates exact test parameters
    if (lambda == 0.0F) {
      EXPECT_FLOAT_EQ(out[i], h[i]);
    }
  }
  // No drift => no change, regardless of lambda.
  auto same = compensate_weight_gradient(h, stale, stale, lambda);
  EXPECT_EQ(same, h);
}

INSTANTIATE_TEST_SUITE_P(LambdaSweep, CompensationProperty,
                         ::testing::Values(0.0F, 0.1F, 0.5F, 1.0F, 2.0F));

// ---------------------------------------------------------------------
// Supernet mask/payload invariants across node counts.
// ---------------------------------------------------------------------
class SupernetProperty : public ::testing::TestWithParam<int> {};

TEST_P(SupernetProperty, MaskedSubsetInvariants) {
  const int nodes = GetParam();
  SupernetConfig cfg;
  cfg.num_cells = 3;
  cfg.num_nodes = nodes;
  cfg.stem_channels = 4;
  cfg.image_size = 8;
  Rng rng(31 + static_cast<std::uint64_t>(nodes));
  Supernet net(cfg, rng);
  const std::size_t total = net.param_count();
  for (int trial = 0; trial < 5; ++trial) {
    Mask m = random_mask(net.num_edges(), rng);
    auto ids = net.masked_param_ids(m);
    // ids are sorted unique indices into the param list.
    for (std::size_t i = 1; i < ids.size(); ++i) EXPECT_LT(ids[i - 1], ids[i]);
    EXPECT_LT(ids.back(), net.params().size());
    const std::size_t sub = net.param_count_masked(m);
    EXPECT_LT(sub, total);
    EXPECT_GT(sub, 0u);
    // Gather/scatter round-trip over this subset.
    auto vals = net.gather_values(ids);
    EXPECT_EQ(vals.size(), sub);
    net.scatter_values(ids, vals);
    EXPECT_EQ(net.gather_values(ids), vals);
  }
}

INSTANTIATE_TEST_SUITE_P(NodeSweep, SupernetProperty,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace fms
