// Tests for the NAS search space: candidate ops, cell DAG, supernet
// masking, parameter bookkeeping, genotype discretization, discrete net.
#include <set>

#include "gtest/gtest.h"
#include "src/nas/discrete_net.h"
#include "src/nas/supernet.h"
#include "src/tensor/ops.h"

namespace fms {
namespace {

SupernetConfig small_cfg() {
  SupernetConfig cfg;
  cfg.num_cells = 3;
  cfg.num_nodes = 2;
  cfg.stem_channels = 4;
  cfg.num_classes = 10;
  cfg.image_size = 8;
  return cfg;
}

TEST(NasOps, AllOpsPreserveShapeAtStride1) {
  Rng rng(1);
  Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  for (int o = 0; o < kNumOps; ++o) {
    auto op = make_candidate_op(static_cast<OpType>(o), 4, 1, rng);
    Tensor y = op->forward(x, false);
    EXPECT_EQ(y.shape(), x.shape()) << op_name(static_cast<OpType>(o));
  }
}

TEST(NasOps, AllOpsHalveSpatialAtStride2) {
  Rng rng(2);
  Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  for (int o = 0; o < kNumOps; ++o) {
    auto op = make_candidate_op(static_cast<OpType>(o), 4, 2, rng);
    Tensor y = op->forward(x, false);
    EXPECT_EQ(y.dim(1), 4) << op_name(static_cast<OpType>(o));
    EXPECT_EQ(y.dim(2), 4) << op_name(static_cast<OpType>(o));
    EXPECT_EQ(y.dim(3), 4) << op_name(static_cast<OpType>(o));
  }
}

TEST(NasOps, ZeroOpOutputsZerosAndZeroGrads) {
  Rng rng(3);
  ZeroOp op(1);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  Tensor y = op.forward(x, true);
  EXPECT_FLOAT_EQ(y.l2_norm(), 0.0F);
  Tensor gx = op.backward(Tensor::full(y.shape(), 1.0F));
  EXPECT_FLOAT_EQ(gx.l2_norm(), 0.0F);
  EXPECT_EQ(gx.shape(), x.shape());
}

TEST(Cell, EdgeCountFormula) {
  EXPECT_EQ(Cell::num_edges(1), 2);
  EXPECT_EQ(Cell::num_edges(2), 5);
  EXPECT_EQ(Cell::num_edges(3), 9);
  EXPECT_EQ(Cell::num_edges(4), 14);  // the DARTS cell
}

TEST(Cell, MaskedForwardShape) {
  Rng rng(4);
  CellSpec spec;
  spec.nodes = 2;
  spec.c_prev_prev = 4;
  spec.c_prev = 4;
  spec.c = 4;
  Cell cell(spec, rng);
  Tensor s0 = Tensor::randn({2, 4, 8, 8}, rng);
  Tensor s1 = Tensor::randn({2, 4, 8, 8}, rng);
  std::vector<int> mask(static_cast<std::size_t>(cell.num_edges()),
                        static_cast<int>(OpType::kSepConv3));
  Tensor y = cell.forward(s0, s1, mask, false);
  EXPECT_EQ(y.dim(1), cell.out_channels());
  EXPECT_EQ(y.dim(2), 8);
}

TEST(Cell, ReductionCellHalvesSpatial) {
  Rng rng(5);
  CellSpec spec;
  spec.nodes = 2;
  spec.c_prev_prev = 4;
  spec.c_prev = 4;
  spec.c = 8;
  spec.reduction = true;
  Cell cell(spec, rng);
  Tensor s0 = Tensor::randn({1, 4, 8, 8}, rng);
  Tensor s1 = Tensor::randn({1, 4, 8, 8}, rng);
  std::vector<int> mask(static_cast<std::size_t>(cell.num_edges()),
                        static_cast<int>(OpType::kMaxPool3));
  Tensor y = cell.forward(s0, s1, mask, false);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(1), 16);
}

TEST(Cell, BackwardShapesMatchInputs) {
  Rng rng(6);
  CellSpec spec;
  spec.nodes = 2;
  spec.c_prev_prev = 4;
  spec.c_prev = 4;
  spec.c = 4;
  Cell cell(spec, rng);
  Tensor s0 = Tensor::randn({1, 4, 6, 6}, rng);
  Tensor s1 = Tensor::randn({1, 4, 6, 6}, rng);
  std::vector<int> mask{1, 4, 2, 3, 6};  // mixed ops across 5 edges
  Tensor y = cell.forward(s0, s1, mask, true);
  auto [g0, g1] = cell.backward(Tensor::full(y.shape(), 0.01F));
  EXPECT_EQ(g0.shape(), s0.shape());
  EXPECT_EQ(g1.shape(), s1.shape());
  EXPECT_GT(g0.l2_norm() + g1.l2_norm(), 0.0F);
}

TEST(Cell, MixedForwardMatchesMaskedWhenOneHot) {
  // With one-hot edge weights, mixed mode must equal masked mode exactly
  // (in eval mode so batch-norm state does not interfere across calls).
  Rng rng(7);
  CellSpec spec;
  spec.nodes = 2;
  spec.c_prev_prev = 4;
  spec.c_prev = 4;
  spec.c = 4;
  Cell cell(spec, rng);
  Tensor s0 = Tensor::randn({1, 4, 6, 6}, rng);
  Tensor s1 = Tensor::randn({1, 4, 6, 6}, rng);
  std::vector<int> mask{1, 4, 2, 3, 6};
  Tensor y_masked = cell.forward(s0, s1, mask, false);
  EdgeWeights w(static_cast<std::size_t>(cell.num_edges()));
  for (std::size_t e = 0; e < w.size(); ++e) {
    w[e].fill(0.0F);
    w[e][static_cast<std::size_t>(mask[e])] = 1.0F;
  }
  Tensor y_mixed = cell.forward_mixed(s0, s1, w, false);
  ASSERT_EQ(y_mixed.numel(), y_masked.numel());
  for (std::size_t i = 0; i < y_masked.numel(); ++i) {
    EXPECT_NEAR(y_mixed[i], y_masked[i], 1e-4F);
  }
}

TEST(Supernet, ForwardLogitsShape) {
  Rng rng(8);
  SupernetConfig cfg = small_cfg();
  Supernet net(cfg, rng);
  Mask mask = random_mask(net.num_edges(), rng);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor logits = net.forward(x, mask, false);
  EXPECT_EQ(logits.dim(0), 2);
  EXPECT_EQ(logits.dim(1), 10);
}

TEST(Supernet, MaskedParamsSubsetAndShared) {
  Rng rng(9);
  SupernetConfig cfg = small_cfg();
  Supernet net(cfg, rng);
  Mask m1 = random_mask(net.num_edges(), rng);
  auto ids1 = net.masked_param_ids(m1);
  EXPECT_GT(ids1.size(), 0u);
  EXPECT_LT(ids1.size(), net.params().size());
  // Different masks share the stem/preprocess/classifier ids.
  Mask m2 = random_mask(net.num_edges(), rng);
  auto ids2 = net.masked_param_ids(m2);
  std::set<std::size_t> s1(ids1.begin(), ids1.end());
  int common = 0;
  for (auto id : ids2) {
    if (s1.count(id)) ++common;
  }
  EXPECT_GT(common, 0);
}

TEST(Supernet, SubmodelMuchSmallerThanSupernet) {
  // The paper's headline efficiency claim: a sub-model is roughly 1/N of
  // the supernet (shared stem/classifier keep it above exactly 1/8).
  Rng rng(10);
  SupernetConfig cfg;
  cfg.num_cells = 4;
  cfg.num_nodes = 3;
  cfg.stem_channels = 8;
  Supernet net(cfg, rng);
  Mask mask = random_mask(net.num_edges(), rng);
  const double ratio = static_cast<double>(net.submodel_bytes(mask)) /
                       static_cast<double>(net.supernet_bytes());
  EXPECT_LT(ratio, 0.45);
  EXPECT_GT(ratio, 0.02);
}

TEST(Supernet, GatherScatterRoundTrip) {
  Rng rng(11);
  Supernet net(small_cfg(), rng);
  Mask mask = random_mask(net.num_edges(), rng);
  auto ids = net.masked_param_ids(mask);
  std::vector<float> vals = net.gather_values(ids);
  for (auto& v : vals) v += 0.25F;
  net.scatter_values(ids, vals);
  std::vector<float> vals2 = net.gather_values(ids);
  EXPECT_EQ(vals, vals2);
}

TEST(Supernet, GatherFromFlatMatchesGatherValues) {
  Rng rng(12);
  Supernet net(small_cfg(), rng);
  Mask mask = random_mask(net.num_edges(), rng);
  auto ids = net.masked_param_ids(mask);
  std::vector<float> direct = net.gather_values(ids);
  std::vector<float> flat = net.flat_values();
  std::vector<float> via_flat = net.gather_from_flat(flat, ids);
  EXPECT_EQ(direct, via_flat);
}

TEST(Supernet, FlatRoundTrip) {
  Rng rng(13);
  Supernet net(small_cfg(), rng);
  std::vector<float> flat = net.flat_values();
  EXPECT_EQ(flat.size(), net.param_count());
  for (auto& v : flat) v *= 2.0F;
  net.set_flat_values(flat);
  EXPECT_EQ(net.flat_values(), flat);
}

TEST(Supernet, BackwardOnlyTouchesMaskedOps) {
  Rng rng(14);
  Supernet net(small_cfg(), rng);
  Mask mask = random_mask(net.num_edges(), rng);
  net.zero_grad();
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor logits = net.forward(x, mask, true);
  CrossEntropyResult ce = cross_entropy(logits, {0, 1});
  net.backward(ce.grad_logits);
  // Gradients outside the masked subset must be exactly zero.
  auto ids = net.masked_param_ids(mask);
  std::set<std::size_t> in_mask(ids.begin(), ids.end());
  const auto& params = net.params();
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!in_mask.count(i)) {
      EXPECT_FLOAT_EQ(params[i]->grad.l2_norm(), 0.0F) << "param " << i;
    }
  }
  // And at least some masked gradients are non-zero.
  float masked_norm = 0.0F;
  for (auto id : ids) masked_norm += params[id]->grad.l2_norm();
  EXPECT_GT(masked_norm, 0.0F);
}

TEST(Genotype, DiscretizePicksArgmaxNonZeroOp) {
  const int nodes = 2;
  const int edges = Cell::num_edges(nodes);
  AlphaTable alpha(static_cast<std::size_t>(edges));
  for (auto& row : alpha) row.fill(0.0F);
  // Make "none" dominant everywhere but op 4 second: discretize must skip
  // the zero op and pick op 4.
  for (auto& row : alpha) {
    row[0] = 5.0F;
    row[4] = 2.0F;
  }
  Genotype g = discretize(alpha, alpha, nodes);
  EXPECT_EQ(g.normal.size(), 4u);
  for (const auto& e : g.normal) {
    EXPECT_EQ(e.op, OpType::kSepConv3);
  }
}

TEST(Genotype, DiscretizeKeepsTwoEdgesPerNode) {
  const int nodes = 3;
  const int edges = Cell::num_edges(nodes);
  AlphaTable alpha(static_cast<std::size_t>(edges));
  Rng rng(15);
  for (auto& row : alpha) {
    for (auto& v : row) v = rng.normal();
  }
  Genotype g = discretize(alpha, alpha, nodes);
  EXPECT_EQ(g.normal.size(), 6u);
  EXPECT_EQ(g.reduce.size(), 6u);
  // Inputs must be valid for each node.
  for (int node = 0; node < nodes; ++node) {
    for (int k = 0; k < 2; ++k) {
      const auto& e = g.normal[static_cast<std::size_t>(2 * node + k)];
      EXPECT_GE(e.input, 0);
      EXPECT_LT(e.input, 2 + node);
    }
  }
}

TEST(DiscreteNet, ForwardBackwardAndParamCount) {
  Rng rng(16);
  SupernetConfig cfg = small_cfg();
  const int edges = Cell::num_edges(cfg.num_nodes);
  AlphaTable alpha(static_cast<std::size_t>(edges));
  for (auto& row : alpha) {
    for (auto& v : row) v = rng.normal();
  }
  Genotype g = discretize(alpha, alpha, cfg.num_nodes);
  DiscreteNet net(g, cfg, rng);
  EXPECT_GT(net.param_count(), 0u);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor logits = net.forward(x, true);
  EXPECT_EQ(logits.dim(1), 10);
  CrossEntropyResult ce = cross_entropy(logits, {3, 7});
  net.backward(ce.grad_logits);
  float gnorm = 0.0F;
  for (Param* p : net.params()) gnorm += p->grad.l2_norm();
  EXPECT_GT(gnorm, 0.0F);
}

TEST(DiscreteNet, SmallerThanSupernet) {
  Rng rng(17);
  SupernetConfig cfg = small_cfg();
  Supernet supernet(cfg, rng);
  const int edges = Cell::num_edges(cfg.num_nodes);
  AlphaTable alpha(static_cast<std::size_t>(edges));
  for (auto& row : alpha) row.fill(0.0F);
  Genotype g = discretize(alpha, alpha, cfg.num_nodes);
  DiscreteNet net(g, cfg, rng);
  EXPECT_LT(net.param_count(), supernet.param_count());
}

}  // namespace
}  // namespace fms
