// Tests for the CIFAR binary loader, using synthesized files in the
// standard format.
#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "src/data/cifar_io.h"

namespace fms {
namespace {

std::vector<std::uint8_t> fake_cifar10_records(int n, std::uint8_t base) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < n; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(i % 10));  // label
    for (int p = 0; p < 3072; ++p) {
      bytes.push_back(static_cast<std::uint8_t>((base + i + p) % 256));
    }
  }
  return bytes;
}

TEST(CifarIo, ParsesCifar10Records) {
  Dataset out(10, 3, 32, 32);
  append_cifar_records(fake_cifar10_records(5, 0), CifarFormat{}, out);
  EXPECT_EQ(out.size(), 5);
  EXPECT_EQ(out.label(0), 0);
  EXPECT_EQ(out.label(4), 4);
  // Pixel 0 of record 0 is byte 0 -> -1.0.
  EXPECT_FLOAT_EQ(out.image(0)[0], -1.0F);
  // Byte 255 -> 1.0.
  EXPECT_FLOAT_EQ(out.image(0)[255], 255.0F / 127.5F - 1.0F);
}

TEST(CifarIo, ParsesCifar100FineLabels) {
  std::vector<std::uint8_t> bytes;
  bytes.push_back(7);   // coarse label (ignored)
  bytes.push_back(42);  // fine label
  for (int p = 0; p < 3072; ++p) bytes.push_back(128);
  Dataset out(100, 3, 32, 32);
  CifarFormat fmt;
  fmt.num_classes = 100;
  fmt.has_coarse_label = true;
  append_cifar_records(bytes, fmt, out);
  EXPECT_EQ(out.size(), 1);
  EXPECT_EQ(out.label(0), 42);
  EXPECT_NEAR(out.image(0)[0], 128.0F / 127.5F - 1.0F, 1e-6F);
}

TEST(CifarIo, RejectsTruncatedFile) {
  auto bytes = fake_cifar10_records(2, 0);
  bytes.pop_back();
  Dataset out(10, 3, 32, 32);
  EXPECT_THROW(append_cifar_records(bytes, CifarFormat{}, out), CheckError);
}

TEST(CifarIo, RejectsOutOfRangeLabel) {
  std::vector<std::uint8_t> bytes;
  bytes.push_back(200);  // label 200 in a 10-class file
  for (int p = 0; p < 3072; ++p) bytes.push_back(0);
  Dataset out(10, 3, 32, 32);
  EXPECT_THROW(append_cifar_records(bytes, CifarFormat{}, out), CheckError);
}

TEST(CifarIo, LoadsAndConcatenatesFiles) {
  const std::string dir = ::testing::TempDir();
  const std::string p1 = dir + "/fms_cifar_a.bin";
  const std::string p2 = dir + "/fms_cifar_b.bin";
  auto write = [](const std::string& path, const std::vector<std::uint8_t>& b) {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
  };
  write(p1, fake_cifar10_records(3, 0));
  write(p2, fake_cifar10_records(2, 50));
  Dataset data = load_cifar({p1, p2}, CifarFormat{});
  EXPECT_EQ(data.size(), 5);
  EXPECT_EQ(data.height(), 32);
  // Loaded data plugs straight into the partitioners.
  Rng rng(1);
  auto parts = dirichlet_partition(data.labels(), 10, 2, 0.5, rng);
  EXPECT_EQ(parts.size(), 2u);
  std::filesystem::remove(p1);
  std::filesystem::remove(p2);
}

TEST(CifarIo, MissingFileThrows) {
  EXPECT_THROW(load_cifar({"/nonexistent/cifar.bin"}, CifarFormat{}),
               CheckError);
}

}  // namespace
}  // namespace fms
