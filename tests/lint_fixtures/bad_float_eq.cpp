// Known-bad fixture for the float-eq rule. Line numbers are asserted by
// tests/test_lint.cpp — edit with care.

bool bad_rhs(float x) { return x == 0.1F; }

bool bad_lhs(double y) { return 2.5 == y; }

bool bad_ne(double z) { return z != 1e-6; }
