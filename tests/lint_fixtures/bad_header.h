// Known-bad fixture for the pragma-once rule: no include guard at all.
// The finding is reported at line 1 (tests/test_lint.cpp asserts this).

namespace fms_lint_fixture {
inline int forty_two() { return 42; }
}  // namespace fms_lint_fixture
