// Fixture: every violation suppressed in place — the linter must report
// nothing for this file. Exercises both annotation styles (same-line and
// comment-line-above).
#include <cstdlib>
#include <ctime>
#include <stdexcept>

int suppressed_rand() {
  return rand();  // fms-lint: allow(unseeded-rng) -- fixture
}

long suppressed_time() {
  // fms-lint: allow(wall-clock) -- fixture, next-line style
  return static_cast<long>(time(nullptr));
}

bool suppressed_eq(float x) {
  return x == 0.5F;  // fms-lint: allow(float-eq) -- fixture
}

void suppressed_throw(bool fail) {
  // fms-lint: allow(bare-throw) -- fixture
  // a second comment line must not break the chain to the code below
  if (fail) throw std::runtime_error("ok");
}
