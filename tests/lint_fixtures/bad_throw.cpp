// Known-bad fixture for the bare-throw rule. Line numbers are asserted by
// tests/test_lint.cpp — edit with care.
#include <stdexcept>

void bad_throw(bool fail) {
  if (fail) throw std::runtime_error("bad");
}
