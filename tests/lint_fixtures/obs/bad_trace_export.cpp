// Known-bad fixture for the wall-clock rule in a trace exporter: the
// causal trace contract (src/obs/trace_ctx) is sim-time ticks only, so a
// Chrome-trace "ts" stamped from the host clock is exactly the bug the
// rule exists to catch — it would make every exported trace
// run-dependent. Line numbers are asserted by tests/test_lint.cpp —
// edit with care.
#include <chrono>
#include <ctime>
#include <string>

std::string bad_export_event(int round) {
  const auto now = std::chrono::system_clock::now();
  const double ts =
      std::chrono::duration<double>(now.time_since_epoch()).count() * 1e6;
  std::string out = "{\"ph\":\"X\",\"ts\":" + std::to_string(ts);
  out += ",\"args\":{\"round\":" + std::to_string(round);
  out += ",\"stamped_at\":" + std::to_string(time(nullptr)) + "}}";
  return out;
}
