// Known-bad fixture for the unseeded-rng rule. Line numbers are asserted
// by tests/test_lint.cpp — edit with care.
#include <cstdlib>
#include <random>

int bad_random_device() {
  std::random_device rd;
  return static_cast<int>(rd());
}

int bad_c_rand() {
  srand(42);
  return rand();
}
