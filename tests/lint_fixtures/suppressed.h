// Fixture: header with no #pragma once, explicitly waived — the
// annotation is honored anywhere in the file for this file-level rule.
// fms-lint: allow(pragma-once) -- fixture: deliberately guard-free

inline int suppressed_header_fn() { return 7; }
