// Fixture: the fms_bench timestamp idiom. A run-metadata wall-clock read
// is legitimate when annotated (it stamps BENCH_perf.json, it never feeds
// a measurement); the exemption must stay narrow — an unannotated read in
// the same file still fires.
#include <ctime>

long long bench_metadata_stamp() {
  // fms-lint: allow(wall-clock) -- metadata timestamp, not measurement
  return static_cast<long long>(std::time(nullptr));
}

long long unannotated_stamp() {
  return static_cast<long long>(std::time(nullptr));
}
