// Clean fixture: banned tokens appear only where they are legal — in
// comments, in string literals, as substrings of longer identifiers, or
// as integer comparisons. The linter must report nothing.
#include <cmath>

// Prose mentioning rand(), srand(), std::random_device, system_clock and
// time(nullptr) must never fire: comments are stripped before matching.
const char* kDoc = "call rand() then check time(nullptr) == 0.5";

bool nearly(double a, double b) { return std::fabs(a - b) < 1e-9; }

bool int_eq(int n) { return n == 0; }  // integer literal: legal

int operand(int randomize) { return randomize; }  // substrings: legal

double round_time(double t) { return t; }  // not the C time() call
