// Clean fixture header: #pragma once present, nothing else to report.
#pragma once

inline double half() { return 0.5; }
