// Fixture: unordered container waived inside an ordering-sensitive path.
// fms-lint: allow(unordered-container) -- fixture
#include <unordered_map>

// fms-lint: allow(unordered-container) -- fixture
std::unordered_map<int, int> suppressed_map();
