// Known-bad fixture for the unordered-container rule: the path contains
// /core/, so the ordering-sensitive context applies. Line numbers are
// asserted by tests/test_lint.cpp — edit with care.
#include <string>
#include <unordered_map>

double bad_sum(const std::unordered_map<std::string, double>& m) {
  double s = 0.0;
  for (const auto& kv : m) s += kv.second;
  return s;
}
