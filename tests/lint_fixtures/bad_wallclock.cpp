// Known-bad fixture for the wall-clock rule. Line numbers are asserted
// by tests/test_lint.cpp — edit with care.
#include <chrono>
#include <ctime>

double bad_system_clock() {
  auto t = std::chrono::system_clock::now();
  return std::chrono::duration<double>(t.time_since_epoch()).count();
}

long bad_time() {
  return static_cast<long>(time(nullptr));
}
