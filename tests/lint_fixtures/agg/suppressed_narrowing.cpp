// Suppression coverage for narrowing-accum in both annotation forms.
#include <vector>

float quantized_accum(const std::vector<double>& v) {
  float acc = 0.0F;
  for (double x : v) {
    // fms-lint: allow(narrowing-accum) -- quantized kernel matches the
    // fp32 reference bit-for-bit by construction
    acc += static_cast<float>(x);
  }
  return acc;
}

int same_line_form(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    total += 1.0;  // fms-lint: allow(narrowing-accum) -- intentional floor
  }
  return total;
}
