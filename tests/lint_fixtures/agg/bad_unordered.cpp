// Known-bad fixture for the unordered-container rule in the robust
// aggregation subsystem: the path contains /agg/, so the
// ordering-sensitive context applies — estimator output feeds theta, so
// iteration order must be deterministic. Line numbers are asserted by
// tests/test_lint.cpp — edit with care.
#include <unordered_set>

int bad_count(const std::unordered_set<int>& rejected) {
  int n = 0;
  for (int id : rejected) n += id > 0 ? 1 : 0;
  return n;
}
