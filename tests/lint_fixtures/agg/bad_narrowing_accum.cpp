// Known-bad: per-element narrowing inside accumulation loops.
#include <vector>

float narrow_cast_accum(const std::vector<double>& v) {
  float acc = 0.0F;
  for (double x : v) {
    acc += static_cast<float>(x * x);
  }
  return acc;
}

float widened_then_rounded(const std::vector<float>& v) {
  float acc2 = 0.0F;
  for (float x : v) acc2 += static_cast<double>(x) * x;
  return acc2;
}

int int_accum_of_floats(int n) {
  int total = 0;
  for (int i = 0; i < n; ++i) {
    total += 0.5;
  }
  return total;
}
