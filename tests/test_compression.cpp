// Tests for the payload codecs: round-trip error bounds, size accounting,
// and integration with the search loop.
#include <cmath>

#include "gtest/gtest.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/fed/compression.h"

namespace fms {
namespace {

std::vector<float> random_payload(std::size_t n, Rng& rng, float scale) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.normal(0.0F, scale);
  return v;
}

TEST(Codec, Float32IsLossless) {
  Rng rng(1);
  auto v = random_payload(1000, rng, 3.0F);
  auto back = codec_decode(codec_encode(v, Codec::kFloat32));
  EXPECT_EQ(back, v);
}

TEST(Codec, Float16RelativeErrorSmall) {
  Rng rng(2);
  auto v = random_payload(2000, rng, 2.0F);
  auto back = codec_decode(codec_encode(v, Codec::kFloat16));
  ASSERT_EQ(back.size(), v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], std::abs(v[i]) * 1e-3F + 1e-4F) << i;
  }
}

TEST(Codec, Float16HandlesSpecialValues) {
  std::vector<float> v{0.0F, -0.0F, 1.0F, -1.0F, 65504.0F, -65504.0F,
                       1e-8F, 1e6F};
  auto back = codec_decode(codec_encode(v, Codec::kFloat16));
  EXPECT_FLOAT_EQ(back[0], 0.0F);
  EXPECT_FLOAT_EQ(back[2], 1.0F);
  EXPECT_FLOAT_EQ(back[3], -1.0F);
  EXPECT_NEAR(back[4], 65504.0F, 64.0F);
  // Tiny magnitudes flush to zero, huge ones clamp to max finite.
  EXPECT_NEAR(back[6], 0.0F, 1e-6F);
  EXPECT_GT(back[7], 60000.0F);
}

TEST(Codec, Int8ErrorBoundedByChunkRange) {
  Rng rng(3);
  auto v = random_payload(3000, rng, 1.0F);
  auto back = codec_decode(codec_encode(v, Codec::kInt8));
  ASSERT_EQ(back.size(), v.size());
  // Per 256-value chunk the quantization step is range/255; values drawn
  // from N(0,1) have range < 12 with overwhelming probability.
  for (std::size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(back[i], v[i], 12.0F / 255.0F) << i;
  }
}

TEST(Codec, Int8ConstantChunkIsExact) {
  std::vector<float> v(300, 1.25F);
  auto back = codec_decode(codec_encode(v, Codec::kInt8));
  for (float x : back) EXPECT_FLOAT_EQ(x, 1.25F);
}

TEST(Codec, EncodedBytesMatchActualAndShrink) {
  Rng rng(4);
  for (std::size_t n : {0UL, 1UL, 255UL, 256UL, 257UL, 5000UL}) {
    auto v = random_payload(n, rng, 1.0F);
    for (Codec c : {Codec::kFloat32, Codec::kFloat16, Codec::kInt8}) {
      EXPECT_EQ(codec_encode(v, c).size(), codec_encoded_bytes(n, c))
          << codec_name(c) << " n=" << n;
    }
    if (n >= 256) {
      EXPECT_LT(codec_encoded_bytes(n, Codec::kFloat16),
                codec_encoded_bytes(n, Codec::kFloat32));
      EXPECT_LT(codec_encoded_bytes(n, Codec::kInt8),
                codec_encoded_bytes(n, Codec::kFloat16));
    }
  }
}

TEST(Codec, DecodeRejectsGarbage) {
  std::vector<std::uint8_t> garbage{42, 1, 0, 0};
  EXPECT_THROW(codec_decode(garbage), CheckError);
}

TEST(Codec, SearchWithInt8PayloadsStillLearns) {
  Rng rng(5);
  SynthSpec spec;
  spec.train_size = 120;
  spec.test_size = 30;
  spec.image_size = 8;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  auto parts = iid_partition(tt.train.size(), 3, rng);
  FederatedSearch search(cfg, tt.train, parts);
  SearchOptions opts;
  opts.codec = Codec::kInt8;
  auto records = search.run_search(6, opts);
  // Bytes drop below the float32 baseline and the loop stays healthy.
  FederatedSearch ref_search(cfg, tt.train, parts);
  auto ref = ref_search.run_search(6, SearchOptions{});
  EXPECT_LT(records[0].bytes_down, ref[0].bytes_down);
  EXPECT_LT(records[0].bytes_up, ref[0].bytes_up);
  for (const auto& r : records) EXPECT_EQ(r.arrived, 3);
}

}  // namespace
}  // namespace fms
