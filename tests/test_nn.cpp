// Unit tests for layers and the optimizer: finite-difference gradient
// checks through whole modules, BatchNorm statistics, SGD semantics.
#include <cmath>

#include "gtest/gtest.h"
#include "src/nn/layers.h"
#include "src/nn/optim.h"
#include "src/tensor/ops.h"

namespace fms {
namespace {

// Scalar objective <net(x), gy> used for module-level grad checks.
double module_objective(Module& m, const Tensor& x, const Tensor& gy) {
  Tensor y = m.forward(x, /*train=*/false);
  double s = 0.0;
  for (std::size_t i = 0; i < y.numel(); ++i) s += y[i] * gy[i];
  return s;
}

void check_module_input_grad(Module& m, const Tensor& x, double tol = 2e-2) {
  Tensor y = m.forward(x, /*train=*/true);
  Rng rng(99);
  Tensor gy = Tensor::randn(y.shape(), rng);
  Tensor gx = m.backward(gy);
  const float eps = 1e-2F;
  for (std::size_t i = 0; i < std::min<std::size_t>(x.numel(), 12); ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    // Use train=false path for objective to keep BN running stats from
    // drifting? No: we need the same normalization. Re-run train mode.
    Tensor yp = m.forward(xp, true);
    Tensor ym = m.forward(xm, true);
    double sp = 0.0, sm = 0.0;
    for (std::size_t j = 0; j < yp.numel(); ++j) {
      sp += yp[j] * gy[j];
      sm += ym[j] * gy[j];
    }
    EXPECT_NEAR(gx[i], (sp - sm) / (2.0 * eps), tol) << "input grad " << i;
  }
}

TEST(Layers, Conv2dParamCount) {
  Rng rng(1);
  Conv2d conv(3, 8, 3, Conv2dSpec{1, 1, 1, 1}, rng);
  EXPECT_EQ(conv.param_count(), 8u * 3u * 3u * 3u);
}

TEST(Layers, LinearForwardShape) {
  Rng rng(1);
  Linear lin(6, 4, rng);
  Tensor x = Tensor::randn({2, 6}, rng);
  Tensor y = lin.forward(x, false);
  EXPECT_EQ(y.dim(0), 2);
  EXPECT_EQ(y.dim(1), 4);
  EXPECT_EQ(lin.param_count(), 6u * 4u + 4u);
}

TEST(Layers, LinearGradCheck) {
  Rng rng(2);
  Linear lin(5, 3, rng);
  Tensor x = Tensor::randn({4, 5}, rng);
  check_module_input_grad(lin, x, 1e-2);
}

TEST(Layers, LinearParamGradCheck) {
  Rng rng(3);
  Linear lin(4, 3, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  Tensor y = lin.forward(x, true);
  Tensor gy = Tensor::randn(y.shape(), rng);
  lin.zero_grad();
  lin.backward(gy);
  auto params = lin.params();
  const float eps = 1e-2F;
  for (Param* p : params) {
    for (std::size_t i = 0; i < std::min<std::size_t>(p->numel(), 6); ++i) {
      const float orig = p->value[i];
      p->value[i] = orig + eps;
      const double sp = module_objective(lin, x, gy);
      p->value[i] = orig - eps;
      const double sm = module_objective(lin, x, gy);
      p->value[i] = orig;
      EXPECT_NEAR(p->grad[i], (sp - sm) / (2.0 * eps), 1e-2);
    }
  }
}

TEST(Layers, BatchNormNormalizesTrainBatch) {
  Rng rng(4);
  BatchNorm2d bn(3);
  Tensor x = Tensor::randn({4, 3, 5, 5}, rng, 3.0F);
  Tensor y = bn.forward(x, true);
  // With gamma=1, beta=0 the per-channel output should be ~N(0,1).
  for (int c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    const int m = 4 * 5 * 5;
    for (int n = 0; n < 4; ++n)
      for (int h = 0; h < 5; ++h)
        for (int w = 0; w < 5; ++w) mean += y.at4(n, c, h, w);
    mean /= m;
    for (int n = 0; n < 4; ++n)
      for (int h = 0; h < 5; ++h)
        for (int w = 0; w < 5; ++w) {
          const double d = y.at4(n, c, h, w) - mean;
          var += d * d;
        }
    var /= m;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(Layers, BatchNormGradCheck) {
  Rng rng(5);
  BatchNorm2d bn(2);
  Tensor x = Tensor::randn({3, 2, 3, 3}, rng);
  Tensor y = bn.forward(x, true);
  Tensor gy = Tensor::randn(y.shape(), rng);
  bn.zero_grad();
  Tensor gx = bn.backward(gy);
  const float eps = 1e-2F;
  auto obj = [&](const Tensor& xx) {
    Tensor yy = bn.forward(xx, true);
    double s = 0.0;
    for (std::size_t j = 0; j < yy.numel(); ++j) s += yy[j] * gy[j];
    return s;
  };
  for (std::size_t i = 0; i < 10; ++i) {
    Tensor xp = x, xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    EXPECT_NEAR(gx[i], (obj(xp) - obj(xm)) / (2.0 * eps), 5e-2);
  }
}

TEST(Layers, BatchNormEvalUsesRunningStats) {
  Rng rng(6);
  BatchNorm2d bn(1);
  // Train on many batches so running stats converge.
  for (int i = 0; i < 200; ++i) {
    Tensor x = Tensor::randn({8, 1, 2, 2}, rng, 2.0F);
    for (auto& v : x.vec()) v += 5.0F;  // mean 5, std 2
    bn.forward(x, true);
  }
  Tensor x = Tensor::full({1, 1, 1, 1}, 5.0F);
  Tensor y = bn.forward(x, false);
  EXPECT_NEAR(y[0], 0.0F, 0.2F);  // the mean maps near zero
}

TEST(Layers, SepConvPreservesShapeStride1) {
  Rng rng(7);
  auto op = make_sep_conv(4, 3, 1, rng);
  Tensor x = Tensor::randn({2, 4, 8, 8}, rng);
  Tensor y = op->forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Layers, SepConvHalvesSpatialStride2) {
  Rng rng(8);
  auto op = make_sep_conv(4, 5, 2, rng);
  Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  Tensor y = op->forward(x, false);
  EXPECT_EQ(y.dim(2), 4);
  EXPECT_EQ(y.dim(3), 4);
  EXPECT_EQ(y.dim(1), 4);
}

TEST(Layers, DilConvPreservesShape) {
  Rng rng(9);
  auto op = make_dil_conv(4, 3, 1, rng);
  Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  Tensor y = op->forward(x, false);
  EXPECT_EQ(y.shape(), x.shape());
}

TEST(Layers, FactorizedReduceHalvesSpatial) {
  Rng rng(10);
  auto op = make_factorized_reduce(4, 8, rng);
  Tensor x = Tensor::randn({1, 4, 8, 8}, rng);
  Tensor y = op->forward(x, false);
  EXPECT_EQ(y.dim(1), 8);
  EXPECT_EQ(y.dim(2), 4);
}

TEST(Layers, SequentialCloneIsDeep) {
  Rng rng(11);
  auto op = make_sep_conv(2, 3, 1, rng);
  auto copy = op->clone();
  auto p1 = op->params();
  auto p2 = copy->params();
  ASSERT_EQ(p1.size(), p2.size());
  // Same values, different storage.
  EXPECT_EQ(p1[0]->value.vec(), p2[0]->value.vec());
  p2[0]->value[0] += 1.0F;
  EXPECT_NE(p1[0]->value[0], p2[0]->value[0]);
}

TEST(Layers, SepConvGradCheck) {
  Rng rng(12);
  auto op = make_sep_conv(2, 3, 1, rng);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  check_module_input_grad(*op, x, 5e-2);
}

TEST(Optim, SGDPlainStep) {
  Param p(Tensor::full({2}, 1.0F));
  p.grad.fill(0.5F);
  SGD opt(SGD::Options{0.1F, 0.0F, 0.0F, 0.0F});
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 1.0F - 0.1F * 0.5F, 1e-6F);
}

TEST(Optim, SGDMomentumAccumulates) {
  Param p(Tensor::full({1}, 0.0F));
  SGD opt(SGD::Options{1.0F, 0.5F, 0.0F, 0.0F});
  p.grad.fill(1.0F);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], -1.0F, 1e-6F);  // v = 1
  p.grad.fill(1.0F);
  opt.step({&p});
  EXPECT_NEAR(p.value[0], -2.5F, 1e-6F);  // v = 1.5
}

TEST(Optim, SGDWeightDecay) {
  Param p(Tensor::full({1}, 2.0F));
  p.grad.fill(0.0F);
  SGD opt(SGD::Options{0.1F, 0.0F, 0.1F, 0.0F});
  opt.step({&p});
  EXPECT_NEAR(p.value[0], 2.0F - 0.1F * (0.1F * 2.0F), 1e-6F);
}

TEST(Optim, GradClipScalesDown) {
  Param p(Tensor::full({4}, 0.0F));
  p.grad.fill(10.0F);  // norm = 20
  const float before = clip_global_norm({&p}, 5.0F);
  EXPECT_NEAR(before, 20.0F, 1e-4F);
  EXPECT_NEAR(p.grad.l2_norm(), 5.0F, 1e-3F);
}

TEST(Optim, GradClipNoopBelowThreshold) {
  Param p(Tensor::full({4}, 0.0F));
  p.grad.fill(1.0F);  // norm = 2
  clip_global_norm({&p}, 5.0F);
  EXPECT_NEAR(p.grad.l2_norm(), 2.0F, 1e-5F);
}

TEST(Optim, FlattenRoundTrip) {
  Rng rng(13);
  Linear lin(3, 2, rng);
  auto params = lin.params();
  std::vector<float> flat = flatten_values(params);
  EXPECT_EQ(flat.size(), lin.param_count());
  for (auto& v : flat) v += 1.0F;
  unflatten_values(flat, params);
  std::vector<float> flat2 = flatten_values(params);
  EXPECT_EQ(flat, flat2);
}

TEST(Optim, TrainingReducesLossOnToyProblem) {
  // Tiny 2-class linear problem: training must reduce the loss.
  Rng rng(14);
  Linear lin(4, 2, rng);
  SGD opt(SGD::Options{0.1F, 0.9F, 0.0F, 5.0F});
  Tensor x = Tensor::randn({16, 4}, rng);
  std::vector<int> y;
  for (int i = 0; i < 16; ++i) {
    y.push_back(x.at2(i, 0) > 0 ? 1 : 0);
  }
  float first_loss = 0.0F, last_loss = 0.0F;
  for (int step = 0; step < 50; ++step) {
    lin.zero_grad();
    Tensor logits = lin.forward(x, true);
    CrossEntropyResult ce = cross_entropy(logits, y);
    lin.backward(ce.grad_logits);
    opt.step(lin.params());
    if (step == 0) first_loss = ce.loss;
    last_loss = ce.loss;
  }
  EXPECT_LT(last_loss, first_loss * 0.5F);
}

}  // namespace
}  // namespace fms
