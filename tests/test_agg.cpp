// Byzantine-robustness surface: the src/agg estimators (exact values,
// permutation invariance, planted-outlier selection, breakdown bounds),
// the robust scalar statistics behind adaptive screening and reward
// winsorization, the Byzantine adversary schedule in the fault injector,
// and attack-vs-defense integration through the full search loop.
// Selected with `ctest -L agg`.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "src/agg/aggregator.h"
#include "src/common/check.h"
#include "src/core/checkpoint.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/fault/fault.h"
#include "src/sim/staleness.h"

namespace fms {
namespace {

using agg::AggregationOutcome;
using agg::AggregatorConfig;
using agg::AggregatorKind;

AggregatorConfig make_cfg(AggregatorKind kind, int f = 1) {
  AggregatorConfig cfg;
  cfg.kind = kind;
  cfg.f = f;
  return cfg;
}

// --- estimator unit tests ---

TEST(Aggregators, MeanMatchesPlainAverage) {
  const std::vector<std::vector<float>> updates = {
      {1.0F, 2.0F, -3.0F}, {3.0F, 0.0F, 1.0F}, {-1.0F, 4.0F, 5.0F}};
  const AggregationOutcome out =
      agg::aggregate(make_cfg(AggregatorKind::kMean), updates);
  ASSERT_EQ(out.grad.size(), 3u);
  EXPECT_FLOAT_EQ(out.grad[0], 1.0F);
  EXPECT_FLOAT_EQ(out.grad[1], 2.0F);
  EXPECT_FLOAT_EQ(out.grad[2], 1.0F);
  EXPECT_EQ(out.clipped_updates, 0);
  EXPECT_EQ(out.trimmed_values, 0);
  EXPECT_EQ(out.rejected_updates, 0);
}

TEST(Aggregators, CoordinateMedianExactValues) {
  // Odd count: per-coordinate middle value. One poisoned update cannot
  // move the median past a benign value.
  const std::vector<std::vector<float>> odd = {
      {1.0F, -5.0F}, {2.0F, 0.0F}, {900.0F, 5.0F}};
  const AggregationOutcome med =
      agg::aggregate(make_cfg(AggregatorKind::kCoordinateMedian), odd);
  EXPECT_FLOAT_EQ(med.grad[0], 2.0F);
  EXPECT_FLOAT_EQ(med.grad[1], 0.0F);

  // Even count: average of the two middle values.
  const std::vector<std::vector<float>> even = {
      {1.0F}, {2.0F}, {4.0F}, {100.0F}};
  const AggregationOutcome med2 =
      agg::aggregate(make_cfg(AggregatorKind::kCoordinateMedian), even);
  EXPECT_FLOAT_EQ(med2.grad[0], 3.0F);
}

TEST(Aggregators, TrimmedMeanExactValues) {
  // f=1 over five updates: drop min and max per coordinate, average the
  // middle three.
  const std::vector<std::vector<float>> updates = {
      {1.0F, 10.0F}, {2.0F, 20.0F}, {3.0F, 30.0F},
      {4.0F, 40.0F}, {-99.0F, 999.0F}};
  const AggregationOutcome out = agg::aggregate(
      make_cfg(AggregatorKind::kTrimmedMean, /*f=*/1), updates);
  EXPECT_FLOAT_EQ(out.grad[0], 2.0F);   // (1+2+3)/3
  EXPECT_FLOAT_EQ(out.grad[1], 30.0F);  // (20+30+40)/3
  EXPECT_EQ(out.trimmed_values, 4);     // 2 coordinates * 2 tails
}

TEST(Aggregators, TrimmedMeanClampsFToWhatArrivalsSupport) {
  // f=5 over three updates must degrade to f=1 (keep at least one value
  // per coordinate), not throw or trim everything.
  const std::vector<std::vector<float>> updates = {{1.0F}, {2.0F}, {30.0F}};
  const AggregationOutcome out = agg::aggregate(
      make_cfg(AggregatorKind::kTrimmedMean, /*f=*/5), updates);
  EXPECT_FLOAT_EQ(out.grad[0], 2.0F);
}

TEST(Aggregators, ClippedMeanBoundsOutlierInfluence) {
  AggregatorConfig cfg = make_cfg(AggregatorKind::kClippedMean);
  cfg.clip_multiplier = 2.0F;
  // Three unit-norm benign updates and one norm-1000 outlier: the bound is
  // median(norms) * 2 = 2, so the outlier is rescaled to norm 2.
  const std::vector<std::vector<float>> updates = {
      {1.0F, 0.0F}, {0.0F, 1.0F}, {-1.0F, 0.0F}, {1000.0F, 0.0F}};
  const AggregationOutcome out = agg::aggregate(cfg, updates);
  EXPECT_EQ(out.clipped_updates, 1);
  EXPECT_NEAR(out.clipped_mass, 998.0, 1e-3);
  EXPECT_NEAR(out.grad[0], (1.0 - 1.0 + 2.0) / 4.0, 1e-5);
  EXPECT_NEAR(out.grad[1], 0.25, 1e-5);
}

TEST(Aggregators, KrumRejectsPlantedOutlier) {
  // Five clustered updates plus one far outlier. Krum must select a
  // cluster member; multi-krum must average only cluster members.
  std::vector<std::vector<float>> updates = {
      {1.00F, 1.00F}, {1.01F, 0.99F}, {0.99F, 1.02F},
      {1.02F, 1.01F}, {0.98F, 0.98F}, {500.0F, -500.0F}};
  const AggregationOutcome krum =
      agg::aggregate(make_cfg(AggregatorKind::kKrum, /*f=*/1), updates);
  ASSERT_EQ(krum.selected.size(), 1u);
  EXPECT_NE(krum.selected[0], 5);  // never the outlier
  EXPECT_LT(std::abs(krum.grad[0] - 1.0F), 0.1F);
  EXPECT_EQ(krum.rejected_updates, 5);

  const AggregationOutcome multi =
      agg::aggregate(make_cfg(AggregatorKind::kMultiKrum, /*f=*/1), updates);
  EXPECT_EQ(multi.selected.size(), 5u);  // n - f survivors
  EXPECT_EQ(multi.rejected_updates, 1);
  EXPECT_EQ(std::count(multi.selected.begin(), multi.selected.end(), 5), 0);
  EXPECT_LT(std::abs(multi.grad[0] - 1.0F), 0.1F);
  EXPECT_LT(std::abs(multi.grad[1] - 1.0F), 0.1F);
}

TEST(Aggregators, RobustEstimatorsArePermutationInvariant) {
  const std::vector<std::vector<float>> updates = {
      {1.0F, -2.0F}, {0.5F, 3.0F}, {2.5F, 0.0F}, {-1.0F, 1.0F},
      {40.0F, -40.0F}};
  std::vector<std::vector<float>> shuffled = {updates[3], updates[0],
                                              updates[4], updates[2],
                                              updates[1]};
  for (AggregatorKind kind :
       {AggregatorKind::kCoordinateMedian, AggregatorKind::kTrimmedMean,
        AggregatorKind::kKrum, AggregatorKind::kMultiKrum,
        AggregatorKind::kClippedMean}) {
    const AggregationOutcome a = agg::aggregate(make_cfg(kind, 1), updates);
    const AggregationOutcome b = agg::aggregate(make_cfg(kind, 1), shuffled);
    ASSERT_EQ(a.grad.size(), b.grad.size());
    for (std::size_t i = 0; i < a.grad.size(); ++i) {
      EXPECT_FLOAT_EQ(a.grad[i], b.grad[i])
          << agg::aggregator_name(kind) << " coordinate " << i;
    }
  }
}

TEST(Aggregators, ParticipationAwareEstimationOverMaskedUpdates) {
  // Three updates, but coordinate 1 is carried by update 0 alone and
  // coordinate 2 by updates 0 and 1 (zeros elsewhere are unsampled ops,
  // not votes). The robust estimators must compute their statistic over
  // the carriers only and rescale by n_j/m — without the presence masks
  // the zeros of the non-carriers would dominate the order statistics
  // and the committed gradient for coordinate 1 would be 0.
  const std::vector<std::vector<float>> updates = {
      {1.0F, 6.0F, 2.0F}, {2.0F, 0.0F, 4.0F}, {3.0F, 0.0F, 0.0F}};
  const std::vector<std::vector<std::uint8_t>> presence = {
      {1, 1, 1}, {1, 0, 1}, {1, 0, 0}};

  const AggregationOutcome med = agg::aggregate(
      make_cfg(AggregatorKind::kCoordinateMedian), updates, presence);
  EXPECT_FLOAT_EQ(med.grad[0], 2.0F);              // median{1,2,3} * 3/3
  EXPECT_FLOAT_EQ(med.grad[1], 2.0F);              // 6 * 1/3
  EXPECT_FLOAT_EQ(med.grad[2], 2.0F);              // median{2,4} * 2/3

  const AggregationOutcome trimmed = agg::aggregate(
      make_cfg(AggregatorKind::kTrimmedMean, /*f=*/1), updates, presence);
  EXPECT_FLOAT_EQ(trimmed.grad[0], 2.0F);          // trim {1,3}, keep 2
  EXPECT_FLOAT_EQ(trimmed.grad[1], 2.0F);          // 1 carrier: no trim
  EXPECT_FLOAT_EQ(trimmed.grad[2], 2.0F);          // 2 carriers: no trim
  EXPECT_EQ(trimmed.trimmed_values, 2);            // only coordinate 0

  // Mean-equivalence sanity: with the mean estimator the presence masks
  // are an algebraic no-op (absent coordinates are exact zeros).
  const AggregationOutcome mean =
      agg::aggregate(make_cfg(AggregatorKind::kMean), updates, presence);
  EXPECT_FLOAT_EQ(mean.grad[1], 2.0F);             // 6/3
}

TEST(Aggregators, BreakdownUnderFOfNAttackers) {
  // 7 benign updates near +1 and f=3 attackers at -1000. The mean is
  // dragged far negative; trimmed_mean(3) and coordinate_median stay in
  // the benign range. This is the estimator-level statement of the
  // attack-vs-defense ablation.
  std::vector<std::vector<float>> updates;
  for (int i = 0; i < 7; ++i) {
    updates.push_back({1.0F + 0.01F * static_cast<float>(i)});
  }
  for (int i = 0; i < 3; ++i) updates.push_back({-1000.0F});

  const double mean =
      agg::aggregate(make_cfg(AggregatorKind::kMean), updates).grad[0];
  const double trimmed =
      agg::aggregate(make_cfg(AggregatorKind::kTrimmedMean, 3), updates)
          .grad[0];
  const double median =
      agg::aggregate(make_cfg(AggregatorKind::kCoordinateMedian), updates)
          .grad[0];
  EXPECT_LT(mean, -200.0);
  EXPECT_GT(trimmed, 0.9);
  EXPECT_LT(trimmed, 1.1);
  EXPECT_GT(median, 0.9);
  EXPECT_LT(median, 1.1);
}

TEST(Aggregators, ConfigParseRoundTrips) {
  EXPECT_EQ(AggregatorConfig::parse("mean").kind, AggregatorKind::kMean);
  const AggregatorConfig trimmed = AggregatorConfig::parse("trimmed_mean:2");
  EXPECT_EQ(trimmed.kind, AggregatorKind::kTrimmedMean);
  EXPECT_EQ(trimmed.f, 2);
  EXPECT_EQ(trimmed.to_string(), "trimmed_mean:2");
  const AggregatorConfig clipped = AggregatorConfig::parse("clipped_mean:2.5");
  EXPECT_EQ(clipped.kind, AggregatorKind::kClippedMean);
  EXPECT_FLOAT_EQ(clipped.clip_multiplier, 2.5F);
  EXPECT_EQ(AggregatorConfig::parse("krum:3").f, 3);
  EXPECT_EQ(AggregatorConfig::parse("multi_krum").kind,
            AggregatorKind::kMultiKrum);
  EXPECT_THROW(AggregatorConfig::parse("geometric_median"), CheckError);
  EXPECT_THROW(AggregatorConfig::parse("trimmed_mean:x"), CheckError);
  EXPECT_THROW(AggregatorConfig::parse("mean:2"), CheckError);
}

// --- robust scalar statistics ---

TEST(RobustStats, MedianAndMad) {
  EXPECT_DOUBLE_EQ(agg::median_of({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(agg::median_of({4.0, 1.0, 2.0, 3.0}), 2.5);
  EXPECT_DOUBLE_EQ(agg::median_of({}), 0.0);
  EXPECT_DOUBLE_EQ(agg::mad_of({1.0, 2.0, 3.0, 100.0}, 2.5), 1.0);
}

TEST(RobustStats, AdaptiveNormBoundTightensButNeverExceedsCap) {
  // 8 benign norms near 5 and one at 5000: median + 6*MAD lands far below
  // the fixed 1e4 cap, so the poisoned norm is now screenable.
  std::vector<double> norms = {4.8, 5.0, 5.1, 4.9, 5.2, 5.0, 4.7, 5.3, 5000.0};
  const double bound = agg::adaptive_norm_bound(norms, 6.0, 4, 1e4);
  EXPECT_LT(bound, 100.0);
  EXPECT_GT(bound, 5.0);
  // Below the min-arrival guard the fixed cap applies unchanged.
  EXPECT_DOUBLE_EQ(agg::adaptive_norm_bound({5.0, 5.1}, 6.0, 4, 1e4), 1e4);
  // The adaptive bound can only tighten the cap, never loosen it.
  EXPECT_DOUBLE_EQ(
      agg::adaptive_norm_bound({1e6, 2e6, 3e6, 4e6, 5e6}, 6.0, 4, 1e4), 1e4);
}

TEST(RobustStats, WinsorBoundsTukeyFence) {
  // Rewards 0.1..0.4 with one inflated 1.0: the 1.5*IQR fence excludes
  // the outlier but keeps every benign value.
  const agg::WinsorBounds wb =
      agg::winsor_bounds({0.1, 0.2, 0.3, 0.4, 1.0}, 1.5);
  EXPECT_LT(wb.lo, 0.1);
  EXPECT_LT(wb.hi, 1.0);
  EXPECT_GT(wb.hi, 0.4);
  // Tiny rounds clamp nothing: the band spans the observed values.
  const agg::WinsorBounds small = agg::winsor_bounds({0.2, 0.9}, 1.5);
  EXPECT_LE(small.lo, 0.2);
  EXPECT_GE(small.hi, 0.9);
}

// --- Byzantine adversary schedule ---

TEST(ByzantineInjector, AttacksAreCraftedToPassScreening) {
  FaultPlan plan;
  plan.sign_flip_fraction = 1.0;
  plan.sign_flip_lambda = 10.0;
  plan.grad_scale_lambda = 10.0;
  plan.reward_attack_delta = 0.5;
  const FaultInjector inj(plan, 4);

  UpdateMsg upd;
  upd.round = 3;
  upd.participant = 1;
  upd.reward = 0.4F;
  upd.loss = 1.7F;
  upd.grads = {0.1F, -0.2F, 0.05F};

  UpdateMsg flipped = upd;
  inj.attack(flipped, FaultKind::kSignFlip, 1, 3);
  EXPECT_FLOAT_EQ(flipped.grads[0], -1.0F);
  EXPECT_FLOAT_EQ(flipped.grads[1], 2.0F);
  EXPECT_EQ(screen_update(flipped, 1e4F), nullptr);

  UpdateMsg scaled = upd;
  inj.attack(scaled, FaultKind::kGradScale, 1, 3);
  EXPECT_FLOAT_EQ(scaled.grads[2], 0.5F);
  EXPECT_EQ(screen_update(scaled, 1e4F), nullptr);

  UpdateMsg lied = upd;
  inj.attack(lied, FaultKind::kRewardAttack, 1, 3);
  EXPECT_FLOAT_EQ(lied.reward, 0.9F);
  EXPECT_EQ(screen_update(lied, 1e4F), nullptr);

  // Colluders in the same round submit identical gradients; across rounds
  // the clone direction changes.
  UpdateMsg c1 = upd;
  UpdateMsg c2 = upd;
  c2.participant = 2;
  inj.attack(c1, FaultKind::kCollude, 1, 3);
  inj.attack(c2, FaultKind::kCollude, 2, 3);
  EXPECT_EQ(c1.grads, c2.grads);
  EXPECT_EQ(screen_update(c1, 1e4F), nullptr);
  UpdateMsg c3 = upd;
  inj.attack(c3, FaultKind::kCollude, 1, 4);
  EXPECT_NE(c1.grads, c3.grads);
}

TEST(ByzantineInjector, SelectionIsPersistentFractionalAndPrecedenced) {
  FaultPlan plan;
  plan.sign_flip_fraction = 0.3;
  const FaultInjector inj(plan, 100);
  int selected = 0;
  for (int p = 0; p < 100; ++p) {
    const auto kind = inj.byzantine_kind(p, 0);
    if (kind.has_value()) {
      ++selected;
      EXPECT_TRUE(*kind == FaultKind::kSignFlip);
      // Persistent: the same client attacks every round.
      for (int r = 1; r < 10; ++r) {
        const auto again = inj.byzantine_kind(p, r);
        ASSERT_TRUE(again.has_value());
        EXPECT_TRUE(*again == FaultKind::kSignFlip);
      }
    }
  }
  EXPECT_GT(selected, 15);
  EXPECT_LT(selected, 45);

  // Precedence: a client selected by every family runs sign-flip.
  FaultPlan all;
  all.sign_flip_fraction = 1.0;
  all.grad_scale_fraction = 1.0;
  all.collude_fraction = 1.0;
  all.reward_attack_fraction = 1.0;
  const FaultInjector overlap(all, 10);
  for (int p = 0; p < 10; ++p) {
    const auto kind = overlap.byzantine_kind(p, 0);
    ASSERT_TRUE(kind.has_value());
    EXPECT_TRUE(*kind == FaultKind::kSignFlip);
  }
}

TEST(ByzantineInjector, PlanGrammarRoundTrips) {
  const FaultPlan plan = FaultPlan::parse(
      "sign_flip=0.3,sign_flip_lambda=10,grad_scale=0.1,"
      "grad_scale_lambda=5,collude=0.2,collude_scale=2,"
      "reward_attack=0.25,reward_attack_delta=-0.4,seed=9");
  EXPECT_DOUBLE_EQ(plan.sign_flip_fraction, 0.3);
  EXPECT_DOUBLE_EQ(plan.sign_flip_lambda, 10.0);
  EXPECT_DOUBLE_EQ(plan.grad_scale_fraction, 0.1);
  EXPECT_DOUBLE_EQ(plan.collude_fraction, 0.2);
  EXPECT_DOUBLE_EQ(plan.reward_attack_delta, -0.4);
  EXPECT_TRUE(plan.has_byzantine());
  EXPECT_FALSE(plan.empty());
  // to_string() -> parse() is the identity on the Byzantine keys.
  const FaultPlan again = FaultPlan::parse(plan.to_string());
  EXPECT_DOUBLE_EQ(again.sign_flip_fraction, plan.sign_flip_fraction);
  EXPECT_DOUBLE_EQ(again.reward_attack_delta, plan.reward_attack_delta);
  EXPECT_THROW(FaultPlan::parse("sign_flip_lambda=0"), CheckError);
  EXPECT_THROW(FaultPlan::parse("reward_attack_delta=2"), CheckError);
}

// --- integration through the search loop ---

SearchConfig agg_config(int participants) {
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 16;
  cfg.schedule.num_participants = participants;
  cfg.seed = 7;
  return cfg;
}

struct RunResult {
  std::vector<RoundRecord> records;
  double final_moving_avg = 0.0;
  FaultStats faults;
  RobustStats robust;
  std::vector<float> theta;
};

RunResult run_campaign(const SearchConfig& cfg, const TrainTest& tt,
                       const std::vector<std::vector<int>>& parts, int warmup,
                       int rounds, const SearchOptions& opts) {
  FederatedSearch search(cfg, tt.train, parts);
  search.run_warmup(warmup);
  RunResult out;
  out.records = search.run_search(rounds, opts);
  out.final_moving_avg = out.records.back().moving_avg;
  out.faults = search.fault_stats();
  out.robust = search.robust_stats();
  out.theta = search.supernet().flat_values();
  for (float v : out.theta) EXPECT_TRUE(std::isfinite(v));
  return out;
}

// The acceptance bar of the ablation: with 3/10 sign-flip attackers at
// lambda=10, the defense bundle (adaptive screen + trimmed mean) tracks
// the attack-free trajectory within 5% while the plain mean measurably
// degrades.
TEST(AggIntegration, TrimmedMeanWithstandsSignFlipWhereMeanDegrades) {
  Rng rng(41);
  SynthSpec spec;
  spec.train_size = 400;
  spec.test_size = 40;
  spec.image_size = 8;
  spec.noise_std = 0.05F;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = agg_config(10);
  auto parts = iid_partition(tt.train.size(), 10, rng);

  SearchOptions clean;
  const RunResult baseline = run_campaign(cfg, tt, parts, 8, 60, clean);
  EXPECT_GT(baseline.final_moving_avg, 0.0);

  // seed=2 selects exactly 3 of the 10 participants for sign-flip (the
  // selection is a persistent per-participant draw, so small fleets need
  // a seed that actually realizes the nominal 30% fraction).
  SearchOptions attacked = clean;
  attacked.fault_plan =
      FaultPlan::parse("sign_flip=0.3,sign_flip_lambda=10,seed=2");
  const RunResult undefended = run_campaign(cfg, tt, parts, 8, 60, attacked);
  EXPECT_GT(undefended.faults.injected_sign_flip, 0u);
  // Every attacked update resolved exactly once in the ledger.
  EXPECT_EQ(undefended.faults.injected_total(),
            undefended.faults.accounted());

  // The layered defense of DESIGN.md: adaptive screening rejects the
  // norm-visible bulk of the attack wholesale (a lambda=10 flip sits ~10x
  // above the round's median norm), and the trimmed mean bounds whatever
  // influence per-coordinate remains. The estimator alone cannot meet the
  // 5% bar here: an op carried by <= 2 arrivals has nothing to trim
  // against, so an amplified flip on a rarely-sampled op leaks straight
  // into theta.
  SearchOptions defended = attacked;
  defended.aggregator = AggregatorConfig::parse("trimmed_mean:3");
  defended.adaptive_screen = true;
  const RunResult robust = run_campaign(cfg, tt, parts, 8, 60, defended);
  EXPECT_EQ(robust.faults.injected_total(), robust.faults.accounted());
  EXPECT_GT(robust.robust.trimmed_values, 0u);
  // The screen did real work: attacked updates died at the gate.
  EXPECT_GT(robust.faults.rejected, 0u);

  // Defense holds: within 5% of the attack-free final moving average.
  EXPECT_LE(std::abs(robust.final_moving_avg - baseline.final_moving_avg),
            0.05 * baseline.final_moving_avg)
      << "clean " << baseline.final_moving_avg << " vs trimmed "
      << robust.final_moving_avg;
  // The undefended mean measurably degrades under the same attack, and
  // the robust run beats it.
  EXPECT_LT(undefended.final_moving_avg, 0.95 * baseline.final_moving_avg)
      << "clean " << baseline.final_moving_avg << " vs undefended "
      << undefended.final_moving_avg;
  EXPECT_GT(robust.final_moving_avg, undefended.final_moving_avg);
}

TEST(AggIntegration, MultiKrumWithstandsScaleAttack) {
  Rng rng(43);
  SynthSpec spec;
  spec.train_size = 400;
  spec.test_size = 40;
  spec.image_size = 8;
  spec.noise_std = 0.05F;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = agg_config(10);
  auto parts = iid_partition(tt.train.size(), 10, rng);

  SearchOptions clean;
  const RunResult baseline = run_campaign(cfg, tt, parts, 8, 60, clean);

  // seed=36 realizes 3/10 grad-scale attackers under the persistent draw.
  SearchOptions attacked = clean;
  attacked.fault_plan =
      FaultPlan::parse("grad_scale=0.3,grad_scale_lambda=10,seed=36");
  attacked.aggregator = AggregatorConfig::parse("multi_krum:3");
  const RunResult robust = run_campaign(cfg, tt, parts, 8, 60, attacked);
  EXPECT_GT(robust.faults.injected_grad_scale, 0u);
  EXPECT_GT(robust.robust.rejected_updates, 0u);
  EXPECT_EQ(robust.faults.injected_total(), robust.faults.accounted());
  EXPECT_LE(std::abs(robust.final_moving_avg - baseline.final_moving_avg),
            0.05 * baseline.final_moving_avg)
      << "clean " << baseline.final_moving_avg << " vs multi_krum "
      << robust.final_moving_avg;
}

TEST(AggIntegration, WinsorizationBoundsRewardInflation) {
  Rng rng(44);
  SynthSpec spec;
  spec.train_size = 200;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = agg_config(10);
  auto parts = iid_partition(tt.train.size(), 10, rng);

  // 2 of 10 clients report accuracy +0.5 — in [0, 1], invisible to
  // screening by construction (seed=12 realizes exactly 2 under the
  // persistent draw). The contamination is deliberately kept under the
  // Tukey fence's breakdown point: the upper quartile tolerates at most
  // 25% of the samples lying above it, so 3+ attackers of 10 would drag
  // Q3 into the attacked block and the fence would clamp nothing.
  SearchOptions attacked;
  attacked.fault_plan =
      FaultPlan::parse("reward_attack=0.2,reward_attack_delta=0.5,seed=12");
  const RunResult inflated = run_campaign(cfg, tt, parts, 2, 12, attacked);
  EXPECT_GT(inflated.faults.injected_reward, 0u);

  SearchOptions defended = attacked;
  defended.winsorize_rewards_k = 1.5;
  defended.baseline_mode = BaselineMode::kMedianReward;
  const RunResult winsorized = run_campaign(cfg, tt, parts, 2, 12, defended);
  EXPECT_GT(winsorized.robust.winsorized_rewards, 0u);
  // The defended reward curve sits below the inflated one: the lie was
  // clamped out of the committed statistic.
  EXPECT_LT(winsorized.final_moving_avg, inflated.final_moving_avg);
  EXPECT_EQ(winsorized.faults.injected_total(),
            winsorized.faults.accounted());
}

// A Byzantine-only plan perturbs gradients/rewards but must leave the
// transport simulation (latencies, bytes, offline/dropped accounting) on
// the fault-free trajectory: the injector is stateless and draws no
// shared randomness.
TEST(AggIntegration, ByzantineOnlyPlanLeavesTransportUntouched) {
  Rng rng(45);
  SynthSpec spec;
  spec.train_size = 200;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = agg_config(6);
  auto parts = iid_partition(tt.train.size(), 6, rng);

  SearchOptions clean;
  const RunResult a = run_campaign(cfg, tt, parts, 2, 8, clean);
  SearchOptions byz;
  byz.fault_plan = FaultPlan::parse("sign_flip=0.4,sign_flip_lambda=5");
  const RunResult b = run_campaign(cfg, tt, parts, 2, 8, byz);

  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].bytes_down, b.records[i].bytes_down);
    EXPECT_EQ(a.records[i].bytes_up, b.records[i].bytes_up);
    EXPECT_DOUBLE_EQ(a.records[i].max_latency_s, b.records[i].max_latency_s);
    EXPECT_EQ(a.records[i].offline, b.records[i].offline);
    EXPECT_EQ(a.records[i].dropped, b.records[i].dropped);
    EXPECT_EQ(a.records[i].arrived, b.records[i].arrived);
  }
  // All attacked updates were absorbed by the (non-robust) estimator:
  // they count as recovered, keeping the ledger exact.
  EXPECT_GT(b.faults.injected_sign_flip, 0u);
  EXPECT_EQ(b.faults.injected_total(), b.faults.accounted());
  EXPECT_EQ(b.faults.rejected, 0u);
}

// Defaults must dispatch through the exact legacy path: an explicitly
// spelled-out mean/no-defense configuration reproduces the default run
// bit for bit.
TEST(AggIntegration, ExplicitMeanConfigIsBitIdenticalToDefault) {
  Rng rng(46);
  SynthSpec spec;
  spec.train_size = 200;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = agg_config(6);
  auto parts = iid_partition(tt.train.size(), 6, rng);

  SearchOptions dflt;
  SearchOptions spelled;
  spelled.aggregator = AggregatorConfig::parse("mean");
  spelled.winsorize_rewards_k = 0.0;
  spelled.baseline_mode = BaselineMode::kMeanReward;
  spelled.adaptive_screen = false;

  const RunResult a = run_campaign(cfg, tt, parts, 3, 10, dflt);
  const RunResult b = run_campaign(cfg, tt, parts, 3, 10, spelled);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.records[i].mean_reward, b.records[i].mean_reward);
    EXPECT_DOUBLE_EQ(a.records[i].moving_avg, b.records[i].moving_avg);
    EXPECT_DOUBLE_EQ(a.records[i].baseline, b.records[i].baseline);
    EXPECT_DOUBLE_EQ(a.records[i].alpha_entropy, b.records[i].alpha_entropy);
  }
  EXPECT_EQ(a.theta, b.theta);  // bitwise
}

// Kill-and-resume under attack + defense: the resumed run replays the
// exact record stream, robust-telemetry fields included, and ends with
// bit-identical weights and ledgers.
TEST(AggIntegration, ResumeUnderAttackAndDefenseIsBitIdentical) {
  Rng rng(47);
  SynthSpec spec;
  spec.train_size = 200;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg = agg_config(6);
  auto parts = iid_partition(tt.train.size(), 6, rng);

  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.staleness = StalenessDistribution::slight();
  opts.fault_plan = FaultPlan::parse(
      "sign_flip=0.3,sign_flip_lambda=10,reward_attack=0.2,"
      "reward_attack_delta=0.5,corrupt=0.1");
  opts.aggregator = AggregatorConfig::parse("trimmed_mean:2");
  opts.winsorize_rewards_k = 1.5;
  opts.baseline_mode = BaselineMode::kMedianReward;
  opts.adaptive_screen = true;

  FederatedSearch reference(cfg, tt.train, parts);
  reference.run_warmup(2);
  const auto full = reference.run_search(10, opts);

  std::vector<std::uint8_t> frozen;
  {
    FederatedSearch first(cfg, tt.train, parts);
    first.run_warmup(2);
    first.run_search(4, opts);
    frozen = first.checkpoint().serialize();
  }  // destroyed — the crash
  FederatedSearch resumed(cfg, tt.train, parts);
  resumed.restore(SearchCheckpoint::deserialize(frozen));
  const auto tail = resumed.run_search(6, opts);
  ASSERT_EQ(tail.size(), 6u);
  for (std::size_t i = 0; i < tail.size(); ++i) {
    SCOPED_TRACE("tail round " + std::to_string(i));
    const RoundRecord& want = full[4 + i];
    const RoundRecord& got = tail[i];
    EXPECT_EQ(want.round, got.round);
    EXPECT_DOUBLE_EQ(want.mean_reward, got.mean_reward);
    EXPECT_DOUBLE_EQ(want.moving_avg, got.moving_avg);
    EXPECT_DOUBLE_EQ(want.baseline, got.baseline);
    EXPECT_EQ(want.rejected, got.rejected);
    EXPECT_EQ(want.winsorized, got.winsorized);
    EXPECT_EQ(want.agg_trimmed, got.agg_trimmed);
    EXPECT_DOUBLE_EQ(want.screen_bound, got.screen_bound);
  }
  EXPECT_EQ(reference.supernet().flat_values(),
            resumed.supernet().flat_values());
  EXPECT_EQ(reference.policy().alpha().flatten(),
            resumed.policy().alpha().flatten());
  EXPECT_EQ(reference.fault_stats().injected_total(),
            resumed.fault_stats().injected_total());
  EXPECT_EQ(reference.robust_stats().trimmed_values,
            resumed.robust_stats().trimmed_values);
  EXPECT_EQ(reference.robust_stats().winsorized_rewards,
            resumed.robust_stats().winsorized_rewards);
}

}  // namespace
}  // namespace fms
