// Search-health monitor (src/obs/health): synthetic per-detector streams
// around each threshold (grace arming, WARN/CRIT boundaries, transition
// semantics), the report formats, and the end-to-end validation contract
// — every fault class the injector can schedule trips its matching
// detector, while a clean seeded run stays OK for every round. Selected
// with `ctest -L health`.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/obs/health.h"
#include "src/sim/churn.h"
#include "src/obs/metrics.h"
#include "src/obs/telemetry.h"
#include "src/obs/trace_ctx.h"

namespace fms {
namespace {

using obs::HealthConfig;
using obs::HealthMonitor;
using obs::HealthSignal;
using obs::HealthState;

class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::set_telemetry_enabled(false);
    obs::set_tracing_enabled(false);
    obs::TraceContext::instance().reset();
    obs::Telemetry::instance().clear_sinks();
    obs::Telemetry::instance().registry().reset();
  }
  void TearDown() override { SetUp(); }
};

// A round no detector should mind: entropy high, reward stable, fresh
// updates, full quorum, nothing rejected.
RoundRecord healthy_rec() {
  RoundRecord rec;
  rec.mean_reward = 0.5;
  rec.moving_avg = 0.5;
  rec.baseline = 0.5;
  rec.alpha_entropy = 1.2;
  rec.arrived = 4;
  rec.mean_tau = 0.0;
  return rec;
}

HealthSignal sig4() {
  HealthSignal sig;
  sig.participants = 4;
  return sig;
}

// Small windows keep the synthetic streams short.
HealthConfig fast_cfg() {
  HealthConfig cfg;
  cfg.window = 4;
  cfg.grace_rounds = 2;
  return cfg;
}

void feed(HealthMonitor& mon, const RoundRecord& rec, int rounds) {
  for (int i = 0; i < rounds; ++i) mon.observe(rec, sig4());
}

// --- arming + clean behavior ---

TEST_F(HealthTest, CleanSyntheticStreamStaysOk) {
  HealthMonitor mon(fast_cfg());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(mon.observe(healthy_rec(), sig4()), HealthState::kOk);
  }
  EXPECT_EQ(mon.worst(), HealthState::kOk);
  EXPECT_EQ(mon.rounds_observed(), 20);
  for (const obs::DetectorStatus& d : mon.detectors()) {
    EXPECT_EQ(d.state, HealthState::kOk) << d.name;
    EXPECT_EQ(d.warn_rounds, 0) << d.name;
    EXPECT_EQ(d.first_warn_round, -1) << d.name;
  }
}

TEST_F(HealthTest, DetectorOrderIsFixed) {
  HealthMonitor mon;
  std::vector<std::string> names;
  for (const obs::DetectorStatus& d : mon.detectors()) names.push_back(d.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "alpha_entropy", "reward", "staleness", "quorum",
                       "screening", "alloc_growth", "churn"}));
  EXPECT_NE(mon.find("quorum"), nullptr);
  EXPECT_EQ(mon.find("no_such_detector"), nullptr);
}

TEST_F(HealthTest, GracePeriodSuppressesEarlyTrips) {
  HealthConfig cfg = fast_cfg();
  cfg.grace_rounds = 5;
  cfg.window = 2;
  HealthMonitor mon(cfg);
  RoundRecord collapsed = healthy_rec();
  collapsed.alpha_entropy = 0.0;  // far past entropy_crit from round 0
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(mon.observe(collapsed, sig4()), HealthState::kOk)
        << "tripped during grace at round " << i;
  }
  EXPECT_EQ(mon.observe(collapsed, sig4()), HealthState::kCrit);
  EXPECT_EQ(mon.find("alpha_entropy")->first_crit_round, 5);
}

// --- per-detector boundaries ---

TEST_F(HealthTest, EntropyCollapseWarnsThenTrips) {
  HealthMonitor warn_mon(fast_cfg());
  RoundRecord rec = healthy_rec();
  rec.alpha_entropy = 0.2;  // between crit 0.10 and warn 0.25
  feed(warn_mon, rec, 10);
  EXPECT_EQ(warn_mon.find("alpha_entropy")->state, HealthState::kWarn);
  EXPECT_EQ(warn_mon.worst(), HealthState::kWarn);

  HealthMonitor crit_mon(fast_cfg());
  rec.alpha_entropy = 0.05;
  feed(crit_mon, rec, 10);
  EXPECT_EQ(crit_mon.find("alpha_entropy")->state, HealthState::kCrit);

  HealthMonitor ok_mon(fast_cfg());
  rec.alpha_entropy = 0.3;  // above warn: a sharpening policy is healthy
  feed(ok_mon, rec, 10);
  EXPECT_EQ(ok_mon.find("alpha_entropy")->state, HealthState::kOk);
}

TEST_F(HealthTest, NonFiniteRewardIsImmediateCritDespiteGrace) {
  HealthMonitor mon;  // default grace of 12 must NOT delay this
  RoundRecord rec = healthy_rec();
  rec.mean_reward = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(mon.observe(rec, sig4()), HealthState::kCrit);
  EXPECT_TRUE(mon.crit_transition());
  ASSERT_EQ(mon.last_crit_detectors().size(), 1U);
  EXPECT_EQ(mon.last_crit_detectors()[0], "reward");
  EXPECT_EQ(mon.find("reward")->first_crit_round, 0);

  HealthMonitor inf_mon;
  rec = healthy_rec();
  rec.baseline = std::numeric_limits<double>::infinity();
  EXPECT_EQ(inf_mon.observe(rec, sig4()), HealthState::kCrit);
}

TEST_F(HealthTest, RewardDropBelowBestTrips) {
  HealthConfig cfg = fast_cfg();
  cfg.window = 2;
  HealthMonitor mon(cfg);
  RoundRecord good = healthy_rec();
  feed(mon, good, 6);  // best window-mean settles at 0.5
  EXPECT_EQ(mon.find("reward")->state, HealthState::kOk);

  RoundRecord sagging = healthy_rec();
  sagging.moving_avg = 0.41;  // 18% below best: warn band (15%..30%)
  feed(mon, sagging, 4);
  EXPECT_EQ(mon.find("reward")->state, HealthState::kWarn);

  RoundRecord collapsed = healthy_rec();
  collapsed.moving_avg = 0.3;  // 40% below best
  feed(mon, collapsed, 4);
  EXPECT_EQ(mon.find("reward")->state, HealthState::kCrit);
}

TEST_F(HealthTest, WinsorizedFloodTripsRewardDetector) {
  HealthMonitor mon(fast_cfg());
  RoundRecord rec = healthy_rec();
  rec.winsorized = 2;  // half of each round's arrivals clamped
  feed(mon, rec, 10);
  EXPECT_EQ(mon.find("reward")->state, HealthState::kCrit);

  HealthMonitor mild(fast_cfg());
  rec.winsorized = 1;  // 25%: between warn 0.15 and crit 0.35
  feed(mild, rec, 10);
  EXPECT_EQ(mild.find("reward")->state, HealthState::kWarn);
}

TEST_F(HealthTest, StalenessInflationTrips) {
  HealthMonitor warn_mon(fast_cfg());
  RoundRecord rec = healthy_rec();
  rec.mean_tau = 1.2;
  feed(warn_mon, rec, 10);
  EXPECT_EQ(warn_mon.find("staleness")->state, HealthState::kWarn);

  HealthMonitor crit_mon(fast_cfg());
  rec.mean_tau = 2.5;
  feed(crit_mon, rec, 10);
  EXPECT_EQ(crit_mon.find("staleness")->state, HealthState::kCrit);
}

TEST_F(HealthTest, QuorumErosionTrips) {
  // Offline fraction between warn 0.20 and crit 0.50 -> WARN.
  HealthMonitor warn_mon(fast_cfg());
  RoundRecord rec = healthy_rec();
  rec.offline = 1;  // of 4 participants
  feed(warn_mon, rec, 10);
  EXPECT_EQ(warn_mon.find("quorum")->state, HealthState::kWarn);

  // A partial-quorum commit counts as full erosion for its round.
  HealthMonitor crit_mon(fast_cfg());
  rec = healthy_rec();
  rec.partial_quorum = true;
  feed(crit_mon, rec, 10);
  EXPECT_EQ(crit_mon.find("quorum")->state, HealthState::kCrit);
}

TEST_F(HealthTest, ScreenRejectionSpikeCountsEstimatorExclusions) {
  // 1 screening rejection of 4 processed = 0.25 -> the CRIT boundary.
  HealthMonitor mon(fast_cfg());
  RoundRecord rec = healthy_rec();
  rec.arrived = 3;
  rec.rejected = 1;
  feed(mon, rec, 10);
  EXPECT_EQ(mon.find("screening")->state, HealthState::kCrit);

  // krum-family exclusions feed the same fraction.
  HealthMonitor agg_mon(fast_cfg());
  rec = healthy_rec();
  rec.arrived = 7;
  rec.agg_rejected = 1;  // 1 of 8 processed = 0.125: warn band
  feed(agg_mon, rec, 10);
  EXPECT_EQ(agg_mon.find("screening")->state, HealthState::kWarn);
}

TEST_F(HealthTest, AllocDetectorRequiresMonotoneGrowthOverFullWindow) {
  HealthConfig cfg = fast_cfg();
  HealthMonitor mon(cfg);
  RoundRecord rec = healthy_rec();
  HealthSignal sig = sig4();
  // Monotone leak: +100000 bytes every round, well past crit 65536.
  for (int i = 0; i < 10; ++i) {
    sig.live_alloc_bytes = 1000000 + 100000 * static_cast<std::int64_t>(i);
    mon.observe(rec, sig);
  }
  EXPECT_EQ(mon.find("alloc_growth")->state, HealthState::kCrit);

  // The same total growth with one flat round inside the window is cache
  // warm-up, not a leak: the detector must stay quiet.
  HealthMonitor bursty(cfg);
  for (int i = 0; i < 10; ++i) {
    sig.live_alloc_bytes =
        1000000 + 100000 * static_cast<std::int64_t>(i - (i % cfg.window == 0));
    bursty.observe(rec, sig);
  }
  EXPECT_EQ(bursty.find("alloc_growth")->state, HealthState::kOk);

  // Tracking off (sentinel -1): the detector never arms.
  HealthMonitor off(cfg);
  feed(off, rec, 10);
  EXPECT_EQ(off.find("alloc_growth")->state, HealthState::kOk);

  // Mild monotone drift lands in the warn band.
  HealthMonitor warn_mon(cfg);
  for (int i = 0; i < 10; ++i) {
    sig.live_alloc_bytes = 1000000 + 8192 * static_cast<std::int64_t>(i);
    warn_mon.observe(rec, sig);
  }
  EXPECT_EQ(warn_mon.find("alloc_growth")->state, HealthState::kWarn);
}

// --- transition semantics + reports ---

TEST_F(HealthTest, CritTransitionFiresOnceAndWorstIsSticky) {
  HealthConfig cfg = fast_cfg();
  cfg.window = 2;
  HealthMonitor mon(cfg);
  feed(mon, healthy_rec(), 4);

  RoundRecord collapsed = healthy_rec();
  collapsed.alpha_entropy = 0.0;
  // The window mean needs both slots collapsed before crossing crit.
  mon.observe(collapsed, sig4());
  EXPECT_EQ(mon.observe(collapsed, sig4()), HealthState::kCrit);
  EXPECT_TRUE(mon.crit_transition());  // the edge, exactly once
  EXPECT_EQ(mon.last_crit_detectors(),
            (std::vector<std::string>{"alpha_entropy"}));
  EXPECT_EQ(mon.observe(collapsed, sig4()), HealthState::kCrit);
  EXPECT_FALSE(mon.crit_transition());  // still CRIT, but no new edge

  // Recovery clears the live state but the run verdict is sticky.
  feed(mon, healthy_rec(), 6);
  EXPECT_EQ(mon.find("alpha_entropy")->state, HealthState::kOk);
  EXPECT_EQ(mon.worst(), HealthState::kCrit);
  EXPECT_EQ(mon.find("alpha_entropy")->crit_rounds, 2);
  EXPECT_GE(mon.find("alpha_entropy")->first_crit_round, 0);
}

TEST_F(HealthTest, ReportsCarryEveryDetector) {
  HealthMonitor mon(fast_cfg());
  RoundRecord rec = healthy_rec();
  rec.partial_quorum = true;
  feed(mon, rec, 8);

  const std::string json = mon.to_json();
  EXPECT_NE(json.find("\"worst\": \"CRIT\""), std::string::npos);
  for (const obs::DetectorStatus& d : mon.detectors()) {
    EXPECT_NE(json.find("\"" + d.name + "\""), std::string::npos) << d.name;
  }
  EXPECT_NE(json.find("\"grace_rounds\": 2"), std::string::npos);

  const std::string table = mon.summary_table();
  EXPECT_NE(table.find("health: worst CRIT over 8 rounds"),
            std::string::npos);
  EXPECT_NE(table.find("quorum"), std::string::npos);
  EXPECT_NE(table.find("trips"), std::string::npos);

  const std::string path = "fms_test_health_report.json";
  mon.write_report(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), json);
  std::remove(path.c_str());
}

TEST_F(HealthTest, EmitsHealthMetricsWhenTelemetryEnabled) {
  obs::set_telemetry_enabled(true);
  HealthMonitor mon(fast_cfg());
  RoundRecord rec = healthy_rec();
  rec.partial_quorum = true;
  feed(mon, rec, 8);
  obs::MetricsRegistry& reg = obs::Telemetry::instance().registry();
  EXPECT_EQ(reg.gauge("fms.health.state").value(), 2.0);  // fms-lint: allow(float-eq) -- gauge stores the exact enum value
  EXPECT_EQ(reg.gauge("fms.health.quorum.state").value(), 2.0);  // fms-lint: allow(float-eq) -- gauge stores the exact enum value
  EXPECT_GT(reg.gauge("fms.health.quorum").value(), 0.9);
  EXPECT_GT(reg.counter("fms.health.crit_rounds").value(), 0U);
  obs::set_telemetry_enabled(false);
}

// --- end-to-end: real fault campaigns against the real search loop ---

struct TinyWorld {
  TrainTest data;
  std::vector<std::vector<int>> partition;
  SearchConfig cfg;
};

// Callers must keep the returned TinyWorld at a stable address before
// constructing a FederatedSearch from it: participants keep pointers
// into `data`.
TinyWorld make_tiny_world(std::uint64_t seed, int participants = 4) {
  Rng rng(seed);
  SynthSpec spec;
  spec.train_size = 160;
  spec.test_size = 40;
  spec.image_size = 8;
  TrainTest data = make_synth_c10(spec, rng);
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  cfg.schedule.num_participants = participants;
  cfg.seed = seed;
  auto partition =
      iid_partition(data.train.size(), cfg.schedule.num_participants, rng);
  return TinyWorld{std::move(data), std::move(partition), cfg};
}

// Runs a campaign and feeds every RoundRecord through a monitor armed
// quickly enough for a short test run.
HealthMonitor run_campaign(TinyWorld& w, const SearchOptions& opts,
                           int rounds) {
  HealthConfig cfg;
  cfg.window = 6;
  cfg.grace_rounds = 4;
  HealthMonitor mon(cfg);
  FederatedSearch search(w.cfg, w.data.train, w.partition);
  search.run_warmup(1);
  HealthSignal sig;
  sig.participants = w.cfg.schedule.num_participants;
  for (const RoundRecord& rec : search.run_search(rounds, opts)) {
    mon.observe(rec, sig);
  }
  return mon;
}

TEST_F(HealthTest, CrashCampaignTripsQuorumDetector) {
  TinyWorld w = make_tiny_world(11);
  SearchOptions opts;
  opts.fault_plan = FaultPlan::parse("crash=0.5,crash_round=1,seed=3");
  HealthMonitor mon = run_campaign(w, opts, 12);
  EXPECT_GE(mon.find("quorum")->state, HealthState::kWarn)
      << mon.summary_table();
}

TEST_F(HealthTest, DropoutCampaignTripsQuorumDetector) {
  TinyWorld w = make_tiny_world(12);
  SearchOptions opts;
  opts.fault_plan = FaultPlan::parse("dropout=0.5,dropout_rounds=2,seed=4");
  opts.quorum = 0.5;  // rounds still commit; erosion shows as offline share
  HealthMonitor mon = run_campaign(w, opts, 12);
  EXPECT_GE(mon.find("quorum")->state, HealthState::kWarn)
      << mon.summary_table();
}

TEST_F(HealthTest, LinkFailureCampaignTripsQuorumDetector) {
  TinyWorld w = make_tiny_world(13);
  SearchOptions opts;
  opts.fault_plan = FaultPlan::parse("link=0.9,seed=5");
  opts.max_retransmits = 0;  // no recovery: dead links starve the quorum
  HealthMonitor mon = run_campaign(w, opts, 12);
  EXPECT_GE(mon.find("quorum")->state, HealthState::kWarn)
      << mon.summary_table();
}

TEST_F(HealthTest, DivergentAndCorruptCampaignTripsScreeningDetector) {
  TinyWorld w = make_tiny_world(14);
  SearchOptions opts;
  opts.fault_plan =
      FaultPlan::parse("divergent=0.5,divergent_p=1.0,corrupt=0.3,seed=6");
  HealthMonitor mon = run_campaign(w, opts, 12);
  EXPECT_GE(mon.find("screening")->state, HealthState::kWarn)
      << mon.summary_table();
}

TEST_F(HealthTest, SignFlipUnderMultiKrumTripsScreeningDetector) {
  TinyWorld w = make_tiny_world(15, /*participants=*/8);
  SearchOptions opts;
  opts.fault_plan =
      FaultPlan::parse("sign_flip=0.375,sign_flip_lambda=4,seed=7");
  opts.aggregator = agg::AggregatorConfig::parse("multi_krum:3");
  HealthMonitor mon = run_campaign(w, opts, 12);
  EXPECT_GE(mon.find("screening")->state, HealthState::kWarn)
      << mon.summary_table();
}

TEST_F(HealthTest, RewardAttackTripsRewardDetector) {
  // A lying *minority*: winsorization's Tukey fence is computed from the
  // round's own arrivals, so a 50% attack would widen the IQR past its
  // own lie. Two inflated clients out of six clamp every round.
  TinyWorld w = make_tiny_world(16, /*participants=*/6);
  SearchOptions opts;
  opts.fault_plan =
      FaultPlan::parse("reward_attack=0.34,reward_attack_delta=0.9,seed=10");
  opts.winsorize_rewards_k = 1.5;  // the robust channel clamps the lies
  HealthMonitor mon = run_campaign(w, opts, 12);
  EXPECT_GE(mon.find("reward")->state, HealthState::kWarn)
      << mon.summary_table();
}

TEST_F(HealthTest, SevereStalenessTripsStalenessDetector) {
  TinyWorld w = make_tiny_world(17);
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  // Nothing fresh: every applied update is at least two rounds late.
  opts.staleness = StalenessDistribution({0.0, 0.0, 0.5, 0.5});
  HealthMonitor mon = run_campaign(w, opts, 14);
  EXPECT_GE(mon.find("staleness")->state, HealthState::kWarn)
      << mon.summary_table();
}

// --- churn detector: idle without the membership signal, trips on
// membership storms and live-population collapse ---

TEST_F(HealthTest, ChurnDetectorIdlesWithoutMembershipSignal) {
  HealthMonitor mon(fast_cfg());
  // sig4() leaves HealthSignal.live at its -1 sentinel: pre-churn callers
  // never arm the detector no matter how long they feed it.
  feed(mon, healthy_rec(), 12);
  EXPECT_EQ(mon.find("churn")->state, HealthState::kOk);
  EXPECT_LT(mon.find("churn")->value, 1e-12);
}

TEST_F(HealthTest, ChurnDetectorTripsOnStormAndOnCollapse) {
  RoundRecord rec = healthy_rec();

  // Membership storm: the fleet stays full but clients cycle in and out
  // at half the fleet per round — rate (1 + 1) / 4 = 0.5 >= crit.
  HealthMonitor storm(fast_cfg());
  HealthSignal churny = sig4();
  churny.live = 4;
  churny.joined = 1;
  churny.left = 1;
  for (int i = 0; i < 10; ++i) storm.observe(rec, churny);
  EXPECT_EQ(storm.find("churn")->state, HealthState::kCrit)
      << storm.summary_table();

  // Population collapse: no transitions at all, but half the fleet is
  // simply gone — absent fraction 0.5 >= crit.
  HealthMonitor collapse(fast_cfg());
  HealthSignal gone = sig4();
  gone.live = 2;
  for (int i = 0; i < 10; ++i) collapse.observe(rec, gone);
  EXPECT_EQ(collapse.find("churn")->state, HealthState::kCrit)
      << collapse.summary_table();

  // Mild churn warns without reaching CRIT: rate 1 / 4 = 0.25.
  HealthMonitor mild(fast_cfg());
  HealthSignal drip = sig4();
  drip.live = 4;
  drip.joined = 1;
  for (int i = 0; i < 10; ++i) mild.observe(rec, drip);
  EXPECT_EQ(mild.find("churn")->state, HealthState::kWarn)
      << mild.summary_table();

  // A full, quiet fleet stays OK.
  HealthMonitor calm(fast_cfg());
  HealthSignal full = sig4();
  full.live = 4;
  for (int i = 0; i < 10; ++i) calm.observe(rec, full);
  EXPECT_EQ(calm.find("churn")->state, HealthState::kOk);
}

TEST_F(HealthTest, ChurnCampaignTripsChurnDetectorEndToEnd) {
  TinyWorld w = make_tiny_world(20, /*participants=*/6);
  w.cfg.telemetry.enabled = true;
  w.cfg.telemetry.health = true;
  SearchOptions opts;
  opts.stale_policy = StalePolicy::kCompensate;
  opts.quorum = 0.5;
  opts.churn_plan =
      ChurnPlan::parse("leave=0.35,away_min=2,away_max=6,seed=2");
  FederatedSearch search(w.cfg, w.data.train, w.partition);
  ASSERT_NE(search.health(), nullptr);
  search.run_warmup(1);
  const std::vector<RoundRecord> records = search.run_search(24, opts);
  EXPECT_GE(search.health()->find("churn")->state, HealthState::kWarn)
      << search.health()->summary_table();
  bool named = false;
  for (const RoundRecord& rec : records) {
    if (rec.health_trips.find("churn") != std::string::npos) named = true;
  }
  EXPECT_TRUE(named);
  // The detector's windowed statistic is exported with the others.
  EXPECT_GT(obs::Telemetry::instance().registry().gauge("fms.health.churn")
                .value(),
            0.0);

  obs::Telemetry::instance().clear_sinks();
  obs::set_telemetry_enabled(false);
}

// --- end-to-end: the integrated path through FederatedSearch ---

TEST_F(HealthTest, IntegratedMonitorAnnotatesRecordsAndDumpsFlight) {
  const std::string flight = "fms_test_health_flight.jsonl";
  const std::string report = "fms_test_health_report_e2e.json";
  std::remove(flight.c_str());
  {
    TinyWorld w = make_tiny_world(18);
    w.cfg.telemetry.enabled = true;
    w.cfg.telemetry.health = true;
    w.cfg.telemetry.health_report_path = report;
    w.cfg.telemetry.flight_recorder = 16;
    w.cfg.telemetry.flight_dump_path = flight;
    SearchOptions opts;
    opts.fault_plan = FaultPlan::parse("crash=0.5,crash_round=1,seed=9");
    FederatedSearch search(w.cfg, w.data.train, w.partition);
    ASSERT_NE(search.health(), nullptr);
    search.run_warmup(1);
    const std::vector<RoundRecord> records = search.run_search(20, opts);

    bool tripped = false;
    for (const RoundRecord& rec : records) {
      if (rec.health > 0) {
        tripped = true;
        EXPECT_FALSE(rec.health_trips.empty());
        EXPECT_NE(rec.health_trips.find("quorum"), std::string::npos);
      }
    }
    EXPECT_TRUE(tripped) << search.health()->summary_table();
    EXPECT_GE(search.health()->worst(), HealthState::kWarn);
  }
  // Partial-quorum rounds (and any CRIT edge) dumped the flight recorder.
  std::ifstream fin(flight);
  ASSERT_TRUE(fin.good());
  std::string header;
  std::getline(fin, header);
  EXPECT_NE(header.find("\"type\":\"flight_header\""), std::string::npos);
  // The search destructor wrote the machine-readable report.
  std::ifstream rin(report);
  ASSERT_TRUE(rin.good());
  std::ostringstream ss;
  ss << rin.rdbuf();
  EXPECT_NE(ss.str().find("\"detectors\""), std::string::npos);
  std::remove(flight.c_str());
  std::remove(report.c_str());

  obs::Telemetry::instance().clear_sinks();
  obs::set_telemetry_enabled(false);
  obs::set_tracing_enabled(false);
  obs::TraceContext::instance().reset();
}

TEST_F(HealthTest, CleanSeededRunReportsZeroWarnCrit) {
  TinyWorld w = make_tiny_world(19);
  w.cfg.telemetry.enabled = true;
  w.cfg.telemetry.health = true;
  SearchOptions opts;
  FederatedSearch search(w.cfg, w.data.train, w.partition);
  ASSERT_NE(search.health(), nullptr);
  search.run_warmup(1);
  const std::vector<RoundRecord> records = search.run_search(20, opts);
  for (const RoundRecord& rec : records) {
    EXPECT_EQ(rec.health, 0) << "round " << rec.round << " trips: "
                             << rec.health_trips;
    EXPECT_TRUE(rec.health_trips.empty());
  }
  EXPECT_EQ(search.health()->worst(), HealthState::kOk)
      << search.health()->summary_table();

  obs::Telemetry::instance().clear_sinks();
  obs::set_telemetry_enabled(false);
}

}  // namespace
}  // namespace fms
