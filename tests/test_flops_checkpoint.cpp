// Tests for the FLOPs counter, checkpointing, and the round-time
// simulator.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "gtest/gtest.h"
#include "src/core/checkpoint.h"
#include "src/core/journal.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/nas/flops.h"
#include "src/sim/round_time.h"

namespace fms {
namespace {

TEST(Flops, ZeroOpIsFree) {
  EXPECT_EQ(op_macs(OpType::kZero, 8, 16, 1), 0u);
  EXPECT_EQ(op_macs(OpType::kIdentity, 8, 16, 1), 0u);
}

TEST(Flops, ConvOpsScaleWithChannelsSquared) {
  // Pointwise 1x1 inside sep-conv is O(C^2): doubling channels must grow
  // MACs by more than 2x.
  const auto c8 = op_macs(OpType::kSepConv3, 8, 16, 1);
  const auto c16 = op_macs(OpType::kSepConv3, 16, 16, 1);
  EXPECT_GT(c16, 2 * c8);
}

TEST(Flops, Sep5CostsMoreThanSep3) {
  EXPECT_GT(op_macs(OpType::kSepConv5, 8, 16, 1),
            op_macs(OpType::kSepConv3, 8, 16, 1));
}

TEST(Flops, StrideReducesCost) {
  EXPECT_LT(op_macs(OpType::kSepConv3, 8, 16, 2),
            op_macs(OpType::kSepConv3, 8, 16, 1));
}

TEST(Flops, SubmodelMacsTrackMaskCost) {
  SupernetConfig cfg;
  cfg.num_cells = 3;
  cfg.num_nodes = 2;
  cfg.stem_channels = 4;
  cfg.image_size = 8;
  const int edges = Cell::num_edges(2);
  Mask zeros, seps;
  zeros.normal.assign(static_cast<std::size_t>(edges), 0);  // all "none"
  zeros.reduce.assign(static_cast<std::size_t>(edges), 0);
  seps.normal.assign(static_cast<std::size_t>(edges), 5);   // all sep5
  seps.reduce.assign(static_cast<std::size_t>(edges), 5);
  EXPECT_GT(submodel_macs(cfg, seps), submodel_macs(cfg, zeros));
  EXPECT_GT(submodel_macs(cfg, zeros), 0u);  // stem + pre + classifier
}

TEST(Flops, GenotypeMacsPositiveAndBelowFullSepSupernet) {
  SupernetConfig cfg;
  cfg.num_cells = 3;
  cfg.num_nodes = 2;
  cfg.stem_channels = 4;
  cfg.image_size = 8;
  Rng rng(4);
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : a)
    for (auto& v : row) v = rng.normal();
  Genotype g = discretize(a, a, 2);
  const auto macs = genotype_macs(cfg, g);
  EXPECT_GT(macs, 0u);
  Mask all_sep5;
  all_sep5.normal.assign(a.size(), 5);
  all_sep5.reduce.assign(a.size(), 5);
  // A genotype keeps only 2 edges/node, so it costs no more than the
  // densest possible sub-model.
  EXPECT_LE(macs, submodel_macs(cfg, all_sep5));
}

TEST(Checkpoint, SerializeRoundTrip) {
  SearchCheckpoint ckpt;
  ckpt.num_edges = 5;
  ckpt.num_nodes = 2;
  ckpt.round = 17;
  ckpt.baseline = 0.42;
  ckpt.theta = {1.0F, 2.0F, 3.0F};
  ckpt.alpha = AlphaPair::zeros(5);
  ckpt.alpha.normal[2][3] = 1.5F;
  SearchCheckpoint back = SearchCheckpoint::deserialize(ckpt.serialize());
  EXPECT_EQ(back.round, 17);
  EXPECT_DOUBLE_EQ(back.baseline, 0.42);
  EXPECT_EQ(back.theta, ckpt.theta);
  EXPECT_FLOAT_EQ(back.alpha.normal[2][3], 1.5F);
}

TEST(Checkpoint, RejectsGarbage) {
  std::vector<std::uint8_t> garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_THROW(SearchCheckpoint::deserialize(garbage), CheckError);
}

TEST(Checkpoint, RestoreValidatesShapes) {
  SupernetConfig cfg;
  cfg.num_cells = 3;
  cfg.num_nodes = 2;
  cfg.stem_channels = 4;
  cfg.image_size = 8;
  Rng rng(5);
  Supernet net(cfg, rng);
  ArchPolicy policy(net.num_edges(), AlphaOptConfig{});
  SearchCheckpoint ckpt = make_checkpoint(net, policy, 2, 3);
  // Mutate then restore: values must come back.
  std::vector<float> orig = net.flat_values();
  std::vector<float> tweaked = orig;
  for (auto& v : tweaked) v += 1.0F;
  net.set_flat_values(tweaked);
  restore_checkpoint(ckpt, net, policy);
  EXPECT_EQ(net.flat_values(), orig);
  // Wrong shape must throw.
  ckpt.theta.pop_back();
  EXPECT_THROW(restore_checkpoint(ckpt, net, policy), CheckError);
}

TEST(Checkpoint, FileRoundTripAndGenotypeFile) {
  const std::string dir = ::testing::TempDir();
  const std::string ckpt_path = dir + "/fms_test.ckpt";
  const std::string geno_path = dir + "/fms_test.geno";

  SearchCheckpoint ckpt;
  ckpt.num_edges = 2;
  ckpt.num_nodes = 1;
  ckpt.theta = {9.0F};
  ckpt.alpha = AlphaPair::zeros(2);
  write_checkpoint_file(ckpt_path, ckpt);
  SearchCheckpoint back = read_checkpoint_file(ckpt_path);
  EXPECT_EQ(back.theta, ckpt.theta);

  Rng rng(6);
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : a)
    for (auto& v : row) v = rng.normal();
  Genotype g = discretize(a, a, 2);
  write_genotype_file(geno_path, g);
  Genotype gback = read_genotype_file(geno_path);
  EXPECT_EQ(gback.nodes, g.nodes);
  ASSERT_EQ(gback.normal.size(), g.normal.size());
  for (std::size_t i = 0; i < g.normal.size(); ++i) {
    EXPECT_EQ(gback.normal[i].input, g.normal[i].input);
    EXPECT_EQ(gback.normal[i].op, g.normal[i].op);
  }
  std::filesystem::remove(ckpt_path);
  std::filesystem::remove(geno_path);
}

std::vector<std::uint8_t> file_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void put_bytes(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

// Randomized corruption fuzz over the durable-file readers: for N seeded
// trials, flip or truncate random bytes and assert the loader always
// returns a clean indexed CheckError — never crashes, never silently
// loads garbage. The CRC trailer makes *every* byte flip detectable.
TEST(Checkpoint, CorruptionFuzzAlwaysYieldsCleanError) {
  const std::string dir = ::testing::TempDir();
  const std::string ckpt_path = dir + "/fms_fuzz.ckpt";
  const std::string geno_path = dir + "/fms_fuzz.geno";

  SearchCheckpoint ckpt;
  ckpt.num_edges = 5;
  ckpt.num_nodes = 2;
  ckpt.round = 9;
  ckpt.theta.assign(300, 0.25F);
  ckpt.alpha = AlphaPair::zeros(5);
  ckpt.runtime_state.assign(200, 0x5A);
  write_checkpoint_file(ckpt_path, ckpt);
  const std::vector<std::uint8_t> ckpt_good = file_bytes(ckpt_path);

  Rng grng(31);
  AlphaTable at(static_cast<std::size_t>(Cell::num_edges(2)));
  for (auto& row : at)
    for (auto& v : row) v = grng.normal();
  const Genotype g = discretize(at, at, 2);
  write_genotype_file(geno_path, g);
  const std::vector<std::uint8_t> geno_good = file_bytes(geno_path);

  Rng fuzz(0xF022);
  for (int trial = 0; trial < 150; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    for (const auto* target : {&ckpt_path, &geno_path}) {
      const auto& good = target == &ckpt_path ? ckpt_good : geno_good;
      std::vector<std::uint8_t> bad = good;
      if (trial % 3 == 0) {
        // Truncation (a torn write).
        bad.resize(static_cast<std::size_t>(
            fuzz.randint(0, static_cast<int>(bad.size()) - 1)));
      } else {
        // 1-4 byte flips anywhere in the file.
        const int flips = fuzz.randint(1, 4);
        for (int f = 0; f < flips; ++f) {
          const auto idx = static_cast<std::size_t>(
              fuzz.randint(0, static_cast<int>(bad.size()) - 1));
          bad[idx] ^= static_cast<std::uint8_t>(fuzz.randint(1, 255));
        }
      }
      put_bytes(*target, bad);
      if (target == &ckpt_path) {
        EXPECT_THROW(read_checkpoint_file(*target), CheckError);
      } else {
        EXPECT_THROW(read_genotype_file(*target), CheckError);
      }
    }
  }
  // The pristine bytes still load — the fuzz loop really was testing the
  // corruption, not a broken fixture.
  put_bytes(ckpt_path, ckpt_good);
  put_bytes(geno_path, geno_good);
  EXPECT_EQ(read_checkpoint_file(ckpt_path).theta, ckpt.theta);
  EXPECT_EQ(read_genotype_file(geno_path).nodes, g.nodes);
  std::filesystem::remove(ckpt_path);
  std::filesystem::remove(geno_path);
}

// Same fuzz over the journal's tolerant loader: it must never throw —
// corruption just shortens the valid frame prefix (torn-tail rule).
TEST(Checkpoint, JournalCorruptionFuzzKeepsAValidPrefix) {
  const std::string dir = ::testing::TempDir();
  const std::string wal_path = dir + "/fms_fuzz.wal";
  {
    RoundJournal wal(wal_path, FaultPlan{});
    for (int t = 0; t < 4; ++t) {
      JournalFrame f;
      f.phase = t < 2 ? 0 : 1;
      f.round = t;
      f.record.round = t;
      f.record.mean_reward = 0.1 * t;
      f.rng_cursor = "cursor-" + std::to_string(t);
      f.staleness_cursor = "stale-" + std::to_string(t);
      wal.append(f);
    }
  }
  const std::vector<std::uint8_t> good = file_bytes(wal_path);
  Rng fuzz(0xF023);
  for (int trial = 0; trial < 150; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    std::vector<std::uint8_t> bad = good;
    if (trial % 3 == 0) {
      bad.resize(static_cast<std::size_t>(
          fuzz.randint(0, static_cast<int>(bad.size()) - 1)));
    } else {
      const auto idx = static_cast<std::size_t>(
          fuzz.randint(0, static_cast<int>(bad.size()) - 1));
      bad[idx] ^= static_cast<std::uint8_t>(fuzz.randint(1, 255));
    }
    put_bytes(wal_path, bad);
    const RoundJournal::LoadResult got = RoundJournal::load(wal_path);
    // Whatever survived is a prefix of the original frames, verbatim.
    ASSERT_LE(got.frames.size(), 4u);
    for (std::size_t i = 0; i < got.frames.size(); ++i) {
      EXPECT_EQ(got.frames[i].round, static_cast<int>(i));
      EXPECT_EQ(got.frames[i].rng_cursor, "cursor-" + std::to_string(i));
    }
    EXPECT_EQ(got.valid_bytes + got.torn_bytes, bad.size());
  }
  put_bytes(wal_path, good);
  EXPECT_EQ(RoundJournal::load(wal_path).frames.size(), 4u);
  std::filesystem::remove(wal_path);
}

TEST(Checkpoint, SearchResumesFromCheckpoint) {
  // Run a short search, checkpoint it, restore the state into a fresh
  // search instance, and verify the restored search continues from the
  // saved weights/policy rather than from scratch.
  Rng rng(20);
  SynthSpec spec;
  spec.train_size = 120;
  spec.test_size = 30;
  spec.image_size = 8;
  TrainTest tt = make_synth_c10(spec, rng);
  SearchConfig cfg;
  cfg.supernet.num_cells = 3;
  cfg.supernet.num_nodes = 2;
  cfg.supernet.stem_channels = 4;
  cfg.supernet.image_size = 8;
  cfg.schedule.batch_size = 8;
  auto parts = iid_partition(tt.train.size(), 3, rng);

  FederatedSearch first(cfg, tt.train, parts);
  first.run_warmup(3);
  first.run_search(4, SearchOptions{});
  SearchCheckpoint ckpt = make_checkpoint(first.supernet(), first.policy(),
                                          cfg.supernet.num_nodes, 7);
  const std::string path = ::testing::TempDir() + "/fms_resume.ckpt";
  write_checkpoint_file(path, ckpt);

  FederatedSearch resumed(cfg, tt.train, parts);
  SearchCheckpoint loaded = read_checkpoint_file(path);
  EXPECT_EQ(loaded.round, 7);
  restore_checkpoint(loaded, resumed.supernet(), resumed.policy());
  EXPECT_EQ(resumed.supernet().flat_values(), first.supernet().flat_values());
  EXPECT_EQ(resumed.policy().alpha().flatten(),
            first.policy().alpha().flatten());
  // And it keeps searching without issue.
  auto records = resumed.run_search(2, SearchOptions{});
  EXPECT_EQ(records.size(), 2u);
  std::filesystem::remove(path);
}

TEST(RoundTime, SoftSyncIsNeverSlowerThanHard) {
  RoundTimeConfig cfg;
  cfg.rounds = 100;
  std::vector<NetEnvironment> envs(10, NetEnvironment::kCar);
  Rng rng(7);
  RoundTimeResult res = simulate_round_time(cfg, envs, rng);
  EXPECT_LE(res.soft_total_seconds, res.hard_total_seconds + 1e-9);
  EXPECT_GT(res.soft_total_seconds, 0.0);
}

TEST(RoundTime, WaitFraction1IsHardSync) {
  RoundTimeConfig cfg;
  cfg.rounds = 50;
  cfg.wait_fraction = 1.0;
  cfg.participants = 6;
  std::vector<NetEnvironment> envs(6, NetEnvironment::kBus);
  Rng rng(8);
  RoundTimeResult res = simulate_round_time(cfg, envs, rng);
  EXPECT_NEAR(res.soft_total_seconds, res.hard_total_seconds, 1e-9);
  // Everything arrives within its own round.
  EXPECT_NEAR(res.induced_staleness[0], 1.0, 1e-9);
}

TEST(RoundTime, AggressiveDeadlineInducesStaleness) {
  RoundTimeConfig cfg;
  cfg.rounds = 200;
  cfg.wait_fraction = 0.5;
  cfg.straggler_p = 0.3;
  std::vector<NetEnvironment> envs(10, NetEnvironment::kTrain);
  Rng rng(9);
  RoundTimeResult res = simulate_round_time(cfg, envs, rng);
  EXPECT_LT(res.induced_staleness[0], 1.0);
  double mass = 0.0;
  for (double v : res.induced_staleness) mass += v;
  EXPECT_NEAR(mass, 1.0, 1e-9);
  EXPECT_LT(res.mean_soft_round, res.mean_hard_round);
}

}  // namespace
}  // namespace fms
