// Tests for the federated message layer, serialization, and the baseline
// searchers (FedNAS, DARTS, ENAS, EvoFedNAS, ResNet-style).
#include "gtest/gtest.h"
#include "src/baselines/enas.h"
#include "src/baselines/evofednas.h"
#include "src/baselines/gradient_nas.h"
#include "src/baselines/resnet_style.h"
#include "src/core/retrain.h"
#include "src/data/synth.h"
#include "src/fed/participant.h"

namespace fms {
namespace {

SupernetConfig tiny_supernet() {
  SupernetConfig cfg;
  cfg.num_cells = 3;
  cfg.num_nodes = 2;
  cfg.stem_channels = 4;
  cfg.image_size = 8;
  return cfg;
}

TrainTest tiny_data(Rng& rng, int train = 120, int test = 40) {
  SynthSpec spec;
  spec.train_size = train;
  spec.test_size = test;
  spec.image_size = 8;
  return make_synth_c10(spec, rng);
}

TEST(Serialize, ByteWriterReaderRoundTrip) {
  ByteWriter w;
  w.write(42);
  w.write(3.5F);
  w.write_vector(std::vector<float>{1.0F, 2.0F});
  w.write_string("hello");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read<int>(), 42);
  EXPECT_FLOAT_EQ(r.read<float>(), 3.5F);
  auto v = r.read_vector<float>();
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(r.read_string(), "hello");
  EXPECT_TRUE(r.exhausted());
}

TEST(Serialize, UnderflowThrows) {
  ByteWriter w;
  w.write(1);
  ByteReader r(w.bytes());
  r.read<int>();
  EXPECT_THROW(r.read<double>(), CheckError);
}

TEST(Messages, SubmodelMsgRoundTrip) {
  SubmodelMsg msg;
  msg.round = 7;
  msg.mask.normal = {1, 2, 3};
  msg.mask.reduce = {4, 5, 6};
  msg.values = {0.5F, -1.0F, 2.0F};
  auto bytes = msg.serialize();
  SubmodelMsg back = SubmodelMsg::deserialize(bytes);
  EXPECT_EQ(back.round, 7);
  EXPECT_EQ(back.mask.normal, msg.mask.normal);
  EXPECT_EQ(back.mask.reduce, msg.mask.reduce);
  EXPECT_EQ(back.values, msg.values);
  EXPECT_EQ(msg.byte_size(), bytes.size());
}

TEST(Messages, UpdateMsgRoundTrip) {
  UpdateMsg msg;
  msg.round = 3;
  msg.participant = 9;
  msg.reward = 0.75F;
  msg.loss = 1.25F;
  msg.mask.normal = {0, 7};
  msg.mask.reduce = {3, 3};
  msg.grads = {1.0F, 2.0F, 3.0F};
  UpdateMsg back = UpdateMsg::deserialize(msg.serialize());
  EXPECT_EQ(back.participant, 9);
  EXPECT_FLOAT_EQ(back.reward, 0.75F);
  EXPECT_EQ(back.grads, msg.grads);
}

TEST(Participant, TrainStepProducesGradsAndReward) {
  Rng rng(1);
  TrainTest tt = tiny_data(rng);
  SupernetConfig cfg = tiny_supernet();
  Rng srv_rng(2);
  Supernet server_net(cfg, srv_rng);
  Mask mask = random_mask(server_net.num_edges(), srv_rng);
  auto ids = server_net.masked_param_ids(mask);

  std::vector<int> idx;
  for (int i = 0; i < 40; ++i) idx.push_back(i);
  AugmentConfig aug;
  SearchParticipant part(0, Shard(&tt.train, idx), cfg, aug, 8, Rng(3));
  SubmodelMsg msg;
  msg.round = 0;
  msg.mask = mask;
  msg.values = server_net.gather_values(ids);
  UpdateMsg upd = part.train_step(msg);
  EXPECT_EQ(upd.participant, 0);
  EXPECT_EQ(upd.grads.size(), msg.values.size());
  EXPECT_GE(upd.reward, 0.0F);
  EXPECT_LE(upd.reward, 1.0F);
  float gnorm = 0.0F;
  for (float g : upd.grads) gnorm += g * g;
  EXPECT_GT(gnorm, 0.0F);
}

TEST(ResNetStyle, ForwardBackwardAndSize) {
  Rng rng(4);
  ResNetStyleConfig cfg;
  cfg.base_channels = 8;
  cfg.stage_blocks = {1, 1};
  ResNetStyle net(cfg, rng);
  EXPECT_GT(net.param_count(), 0u);
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor logits = net.forward(x, true);
  EXPECT_EQ(logits.dim(1), 10);
  CrossEntropyResult ce = cross_entropy(logits, {0, 1});
  net.backward(ce.grad_logits);
  float gnorm = 0.0F;
  for (Param* p : net.params()) gnorm += p->grad.l2_norm();
  EXPECT_GT(gnorm, 0.0F);
}

TEST(ResNetStyle, TrainsOnToyData) {
  Rng rng(5);
  TrainTest tt = tiny_data(rng);
  ResNetStyleConfig cfg;
  cfg.base_channels = 8;
  cfg.stage_blocks = {1, 1};
  Rng net_rng(6);
  ResNetStyle net(cfg, net_rng);
  Rng train_rng(7);
  RetrainResult res =
      centralized_train(net, tt.train, tt.test, 4, 16,
                        SGD::Options{0.05F, 0.9F, 3e-4F, 5.0F}, nullptr,
                        train_rng, 2);
  EXPECT_GT(res.final_test_accuracy, 0.15);
}

TEST(ResNetStyle, MuchBiggerThanSearchedModels) {
  // The fixed baseline must dominate searched models in parameters,
  // mirroring ResNet152 (58.2M) vs the searched 3.9M in Table IV.
  Rng rng(8);
  ResNetStyleConfig rcfg;  // defaults: 24 base channels, 3 stages
  ResNetStyle resnet(rcfg, rng);
  SupernetConfig scfg = tiny_supernet();
  AlphaTable a(static_cast<std::size_t>(Cell::num_edges(scfg.num_nodes)));
  for (auto& row : a) row.fill(0.0F);
  Genotype g = discretize(a, a, scfg.num_nodes);
  DiscreteNet searched(g, scfg, rng);
  EXPECT_GT(resnet.param_count(), 5 * searched.param_count());
}

TEST(AlphaGrad, SoftmaxJacobianMatchesFiniteDifference) {
  // d loss/d alpha from edge-weight grads must match numeric softmax.
  Rng rng(9);
  AlphaPair alpha = AlphaPair::zeros(1);
  for (auto& v : alpha.normal[0]) v = rng.normal();
  EdgeWeights gw(1);
  for (auto& v : gw[0]) v = rng.normal();
  EdgeWeights gzero(1);
  gzero[0].fill(0.0F);
  AlphaPair ga = alpha_grad_from_edge_grads(alpha, gw, gzero);
  // loss(alpha) = sum_o gw_o * softmax(alpha)_o.
  auto loss = [&](const std::array<float, kNumOps>& row) {
    auto p = alpha_softmax(row);
    double s = 0.0;
    for (int o = 0; o < kNumOps; ++o) {
      s += gw[0][static_cast<std::size_t>(o)] * p[static_cast<std::size_t>(o)];
    }
    return s;
  };
  const float eps = 1e-3F;
  for (int j = 0; j < kNumOps; ++j) {
    auto rp = alpha.normal[0], rm = alpha.normal[0];
    rp[static_cast<std::size_t>(j)] += eps;
    rm[static_cast<std::size_t>(j)] -= eps;
    const double fd = (loss(rp) - loss(rm)) / (2.0 * eps);
    EXPECT_NEAR(ga.normal[0][static_cast<std::size_t>(j)], fd, 1e-3);
  }
}

TEST(FedNas, RunsAndReportsSupernetPayload) {
  Rng rng(10);
  TrainTest tt = tiny_data(rng);
  SupernetConfig cfg = tiny_supernet();
  SearchConfig hyper;
  hyper.supernet = cfg;
  auto parts = iid_partition(tt.train.size(), 3, rng);
  FedNasSearch fednas(cfg, tt.train, parts, hyper);
  GradNasResult res = fednas.run(4, 8);
  EXPECT_EQ(res.round_train_acc.size(), 4u);
  EXPECT_EQ(res.genotype.normal.size(), 4u);
  // FedNAS payload per participant is the whole supernet: much larger
  // than any sub-model.
  Rng srng(11);
  Supernet probe(cfg, srng);
  Mask m = random_mask(probe.num_edges(), srng);
  EXPECT_GT(res.bytes_down_per_participant_round,
            2 * probe.submodel_bytes(m));
}

TEST(Darts, FirstOrderRunsAndDerives) {
  Rng rng(12);
  TrainTest tt = tiny_data(rng, 80, 40);
  SupernetConfig cfg = tiny_supernet();
  SearchConfig hyper;
  hyper.supernet = cfg;
  DartsSearch darts(cfg, tt.train, tt.test, hyper, DartsSearch::Options{});
  GradNasResult res = darts.run(4, 8);
  EXPECT_EQ(res.round_train_acc.size(), 4u);
  EXPECT_EQ(res.genotype.reduce.size(), 4u);
}

TEST(Darts, SecondOrderRuns) {
  Rng rng(13);
  TrainTest tt = tiny_data(rng, 60, 30);
  SupernetConfig cfg = tiny_supernet();
  SearchConfig hyper;
  hyper.supernet = cfg;
  DartsSearch::Options opts;
  opts.second_order = true;
  DartsSearch darts(cfg, tt.train, tt.test, hyper, opts);
  GradNasResult res = darts.run(2, 8);
  EXPECT_EQ(res.round_train_acc.size(), 2u);
}

TEST(Enas, RunsAndLearns) {
  Rng rng(14);
  TrainTest tt = tiny_data(rng);
  SupernetConfig cfg = tiny_supernet();
  SearchConfig hyper;
  hyper.supernet = cfg;
  EnasSearch enas(cfg, tt.train, hyper);
  auto res = enas.run(6, 8, 2);
  EXPECT_EQ(res.step_train_acc.size(), 6u);
  EXPECT_EQ(res.genotype.normal.size(), 4u);
}

TEST(EvoFedNas, GenotypeMutationStaysValid) {
  Rng rng(15);
  for (int trial = 0; trial < 50; ++trial) {
    Genotype g = random_genotype(3, rng);
    Genotype m = mutate_genotype(g, rng);
    ASSERT_EQ(m.normal.size(), 6u);
    for (int node = 0; node < 3; ++node) {
      for (int k = 0; k < 2; ++k) {
        const auto& e = m.normal[static_cast<std::size_t>(2 * node + k)];
        EXPECT_GE(e.input, 0);
        EXPECT_LT(e.input, 2 + node);
        EXPECT_NE(e.op, OpType::kZero);
      }
    }
  }
}

TEST(EvoFedNas, RunsAndEvolves) {
  Rng rng(16);
  TrainTest tt = tiny_data(rng);
  SupernetConfig cfg = tiny_supernet();
  SearchConfig hyper;
  hyper.supernet = cfg;
  auto parts = iid_partition(tt.train.size(), 3, rng);
  EvoFedNasSearch::Options opts;
  opts.population = 4;
  opts.evolve_every = 3;
  opts.nodes = 2;
  EvoFedNasSearch evo(cfg, tt.train, parts, hyper, opts);
  auto res = evo.run(7, 8);
  EXPECT_EQ(res.round_train_acc.size(), 7u);
  EXPECT_EQ(res.best.normal.size(), 4u);
  EXPECT_GT(res.avg_model_bytes, 0.0);
  EXPECT_GT(res.best_param_count, 0u);
}

}  // namespace
}  // namespace fms
