// Tests for the dataset substrate: synthetic generators, partitioners
// (i.i.d. and Dirichlet non-i.i.d.), augmentation, and shard batching.
#include <algorithm>
#include <numeric>
#include <set>

#include "gtest/gtest.h"
#include "src/data/synth.h"

namespace fms {
namespace {

TEST(Synth, C10ShapesAndLabels) {
  Rng rng(1);
  SynthSpec spec;
  spec.train_size = 100;
  spec.test_size = 20;
  TrainTest tt = make_synth_c10(spec, rng);
  EXPECT_EQ(tt.train.size(), 100);
  EXPECT_EQ(tt.test.size(), 20);
  EXPECT_EQ(tt.train.num_classes(), 10);
  EXPECT_EQ(tt.train.channels(), 3);
  EXPECT_EQ(tt.train.height(), 16);
  for (int i = 0; i < tt.train.size(); ++i) {
    EXPECT_GE(tt.train.label(i), 0);
    EXPECT_LT(tt.train.label(i), 10);
  }
}

TEST(Synth, C10ClassesAreBalanced) {
  Rng rng(2);
  SynthSpec spec;
  spec.train_size = 200;
  TrainTest tt = make_synth_c10(spec, rng);
  std::vector<int> hist(10, 0);
  for (int i = 0; i < tt.train.size(); ++i) ++hist[tt.train.label(i)];
  for (int h : hist) EXPECT_EQ(h, 20);
}

TEST(Synth, C10ClassConditionalStructure) {
  // Same-class images should correlate more than different-class images
  // (on average) — the generator must carry label signal.
  Rng rng(3);
  SynthSpec spec;
  spec.train_size = 400;
  spec.noise_std = 0.1F;
  TrainTest tt = make_synth_c10(spec, rng);
  auto corr = [&](int i, int j) {
    auto a = tt.train.image(i);
    auto b = tt.train.image(j);
    double dot = 0.0, na = 0.0, nb = 0.0;
    for (std::size_t p = 0; p < a.size(); ++p) {
      dot += a[p] * b[p];
      na += a[p] * a[p];
      nb += b[p] * b[p];
    }
    return std::abs(dot) / (std::sqrt(na) * std::sqrt(nb) + 1e-9);
  };
  double same = 0.0, diff = 0.0;
  int same_n = 0, diff_n = 0;
  for (int i = 0; i < 60; ++i) {
    for (int j = i + 1; j < 60; ++j) {
      if (tt.train.label(i) == tt.train.label(j)) {
        same += corr(i, j);
        ++same_n;
      } else {
        diff += corr(i, j);
        ++diff_n;
      }
    }
  }
  EXPECT_GT(same / same_n, diff / diff_n);
}

TEST(Synth, SvhnGeneratesAllDigits) {
  Rng rng(4);
  SynthSpec spec;
  spec.train_size = 50;
  TrainTest tt = make_synth_svhn(spec, rng);
  std::set<int> seen;
  for (int i = 0; i < tt.train.size(); ++i) seen.insert(tt.train.label(i));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Synth, C100Has100Classes) {
  Rng rng(5);
  SynthSpec spec;
  spec.train_size = 400;
  TrainTest tt = make_synth_c100(spec, rng);
  EXPECT_EQ(tt.train.num_classes(), 100);
  std::set<int> seen;
  for (int i = 0; i < tt.train.size(); ++i) seen.insert(tt.train.label(i));
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Partition, IidCoversAllIndicesOnce) {
  Rng rng(6);
  auto parts = iid_partition(103, 10, rng);
  EXPECT_EQ(parts.size(), 10u);
  std::vector<int> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  EXPECT_EQ(all.size(), 103u);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 103; ++i) EXPECT_EQ(all[i], i);
  // Near-equal sizes.
  for (const auto& p : parts) {
    EXPECT_GE(p.size(), 10u);
    EXPECT_LE(p.size(), 11u);
  }
}

TEST(Partition, DirichletCoversAllIndicesOnce) {
  Rng rng(7);
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) labels.push_back(i % 10);
  auto parts = dirichlet_partition(labels, 10, 10, 0.5, rng);
  std::vector<int> all;
  for (const auto& p : parts) all.insert(all.end(), p.begin(), p.end());
  EXPECT_EQ(all.size(), 500u);
  std::sort(all.begin(), all.end());
  for (int i = 0; i < 500; ++i) EXPECT_EQ(all[i], i);
}

TEST(Partition, DirichletIsMoreSkewedThanIid) {
  // Chi-square-style label imbalance should be much larger under
  // Dirichlet(0.5) than under i.i.d. splitting.
  Rng rng(8);
  std::vector<int> labels;
  for (int i = 0; i < 2000; ++i) labels.push_back(i % 10);
  auto dir_parts = dirichlet_partition(labels, 10, 10, 0.5, rng);
  auto iid_parts = iid_partition(2000, 10, rng);

  auto imbalance = [&](const std::vector<std::vector<int>>& parts) {
    double total = 0.0;
    for (const auto& p : parts) {
      std::vector<int> hist(10, 0);
      for (int idx : p) ++hist[labels[static_cast<std::size_t>(idx)]];
      const double expected =
          static_cast<double>(p.size()) / 10.0 + 1e-9;
      for (int h : hist) {
        total += (h - expected) * (h - expected) / expected;
      }
    }
    return total;
  };
  EXPECT_GT(imbalance(dir_parts), 5.0 * imbalance(iid_parts));
}

TEST(Partition, DirichletNoEmptyShards) {
  Rng rng(9);
  std::vector<int> labels;
  for (int i = 0; i < 200; ++i) labels.push_back(i % 10);
  for (int trial = 0; trial < 10; ++trial) {
    auto parts = dirichlet_partition(labels, 10, 20, 0.1, rng);
    for (const auto& p : parts) EXPECT_FALSE(p.empty());
  }
}

TEST(Shard, NextBatchShapesAndEpochCoverage) {
  Rng rng(10);
  SynthSpec spec;
  spec.train_size = 40;
  TrainTest tt = make_synth_c10(spec, rng);
  std::vector<int> idx(40);
  std::iota(idx.begin(), idx.end(), 0);
  Shard shard(&tt.train, idx);
  Rng batch_rng(11);
  Dataset::Batch b = shard.next_batch(8, nullptr, batch_rng);
  EXPECT_EQ(b.x.dim(0), 8);
  EXPECT_EQ(b.x.dim(1), 3);
  EXPECT_EQ(b.y.size(), 8u);
  // Over 5 batches of 8 = one epoch: every index appears exactly once.
  std::vector<int> seen;
  Shard shard2(&tt.train, idx);
  for (int i = 0; i < 5; ++i) {
    Dataset::Batch bb = shard2.next_batch(8, nullptr, batch_rng);
    (void)bb;
  }
  // Coverage is internal; at minimum the histogram sums correctly.
  auto hist = shard2.label_histogram();
  int total = 0;
  for (int h : hist) total += h;
  EXPECT_EQ(total, 40);
}

TEST(Augment, CutoutZeroesPixels) {
  Rng rng(12);
  Dataset data(2, 3, 8, 8);
  data.add(std::vector<float>(3 * 8 * 8, 1.0F), 0);
  AugmentConfig aug;
  aug.cutout = 4;
  aug.random_clip = 0;
  aug.horizontal_flip_p = 0.0F;
  std::vector<int> idx{0};
  Dataset::Batch b = data.make_batch(idx, &aug, &rng);
  int zeros = 0;
  for (std::size_t i = 0; i < b.x.numel(); ++i) {
    // fms-lint: allow(float-eq) -- cutout augmentation writes exact zeros
    if (b.x[i] == 0.0F) ++zeros;
  }
  EXPECT_GT(zeros, 0);
  EXPECT_LT(zeros, static_cast<int>(b.x.numel()));
}

TEST(Augment, NoAugmentationIsIdentity) {
  Rng rng(13);
  SynthSpec spec;
  spec.train_size = 4;
  TrainTest tt = make_synth_c10(spec, rng);
  std::vector<int> idx{1};
  Dataset::Batch b = tt.train.make_batch(idx, nullptr, nullptr);
  auto img = tt.train.image(1);
  for (std::size_t i = 0; i < img.size(); ++i) {
    EXPECT_FLOAT_EQ(b.x[i], img[i]);
  }
  EXPECT_EQ(b.y[0], tt.train.label(1));
}

}  // namespace
}  // namespace fms
