// Fixture-driven tests for tools/fms_analyze: every check must fire on
// its known-bad mini-tree at the exact expected line, stay silent on a
// consistent tree, and honor the fms-analyze: allow(...) escape hatch in
// both its same-line and comment-line-above forms. Each fixture is a
// directory holding src/ files plus the registry/design artifacts the
// checks cross-reference.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "tools/fms_analyze/analyze.h"

namespace {

namespace fs = std::filesystem;

using fms::analyze::analyze_sources;
using fms::analyze::analyze_tree;
using fms::analyze::Finding;
using fms::analyze::Options;

std::string fixture_dir(const std::string& name) {
  return std::string(FMS_ANALYZE_FIXTURE_DIR) + "/" + name;
}

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Runs every check over one fixture mini-tree: src/ files are loaded
// under src/-rooted relative paths (the scoping the real tree sees), and
// registry.txt / design.md are optional per fixture.
std::vector<Finding> run_case(const std::string& name) {
  const fs::path dir(fixture_dir(name));
  std::vector<std::pair<std::string, std::string>> files;
  const fs::path srcdir = dir / "src";
  if (fs::exists(srcdir)) {
    for (const auto& e : fs::recursive_directory_iterator(srcdir)) {
      if (e.is_regular_file()) {
        files.emplace_back(
            "src/" + fs::relative(e.path(), srcdir).generic_string(),
            slurp(e.path()));
      }
    }
  }
  std::sort(files.begin(), files.end());
  auto optional = [&dir](const char* leaf) {
    const fs::path p = dir / leaf;
    return fs::exists(p) ? slurp(p) : std::string();
  };
  return analyze_sources(files, optional("registry.txt"), "registry.txt",
                         optional("design.md"), "design.md");
}

// (path, check, line) triples in report order — what the assertions
// compare. Findings land on code lines, registry rows, or doc rows, so
// the path is part of the contract.
using PCL = std::vector<std::tuple<std::string, std::string, int>>;

PCL check_lines(const std::vector<Finding>& findings) {
  PCL out;
  out.reserve(findings.size());
  for (const Finding& f : findings) {
    out.emplace_back(f.path, f.check, f.line);
  }
  return out;
}

TEST(FmsAnalyze, SaltCollisionFiresInCodeAndRegistry) {
  EXPECT_EQ(check_lines(run_case("salt_collision")),
            (PCL{{"registry.txt", "salt-collision", 4},
                 {"src/a.cpp", "salt-collision", 5}}));
}

TEST(FmsAnalyze, SaltUnregisteredFiresOnMissingRowAndValueDrift) {
  EXPECT_EQ(check_lines(run_case("salt_unregistered")),
            (PCL{{"src/a.cpp", "salt-unregistered", 4},
                 {"src/a.cpp", "salt-unregistered", 5}}));
}

TEST(FmsAnalyze, SaltStaleFiresAtTheDeadRegistryRow) {
  EXPECT_EQ(check_lines(run_case("salt_stale")),
            (PCL{{"registry.txt", "salt-stale", 2}}));
}

TEST(FmsAnalyze, CheckpointAsymmetryFiresOnKindAndCountMismatch) {
  // Foo: op 2 written as vector but read as string (reported at the
  // read site); Bar: two writes, one read (reported at the unread op).
  EXPECT_EQ(check_lines(run_case("ckpt_asymmetry")),
            (PCL{{"src/state.cpp", "checkpoint-asymmetry", 12},
                 {"src/state.cpp", "checkpoint-asymmetry", 17}}));
}

TEST(FmsAnalyze, DocAuditFiresInBothDirections) {
  EXPECT_EQ(check_lines(run_case("doc_audit")),
            (PCL{{"design.md", "metric-stale", 3},
                 {"design.md", "detector-stale", 7},
                 {"src/emit.cpp", "metric-undocumented", 6},
                 {"src/emit.cpp", "detector-undocumented", 11}}));
}

TEST(FmsAnalyze, SuppressionsSilenceEveryCodeSideCheck) {
  EXPECT_TRUE(run_case("suppressed").empty());
}

TEST(FmsAnalyze, ConsistentTreeProducesNoFindings) {
  EXPECT_TRUE(run_case("clean").empty());
}

TEST(FmsAnalyze, CommentsAndStringsNeverDefineSalts) {
  const std::string src =
      "// kSaltFake = 0x77 in a comment\n"
      "const char* s = \"kSaltFake = 0x78\";\n";
  EXPECT_TRUE(analyze_sources({{"src/a.cpp", src}}, "", "registry.txt", "",
                              "design.md")
                  .empty());
}

TEST(FmsAnalyze, MetricAuditIsSrcScoped) {
  // fms.* literals in tests/bench/tools (e.g. assertions on key names)
  // are not emissions and never need documenting.
  const std::string src =
      "void f(Registry& reg) { reg.counter(\"fms.test.only\").add(1); }\n";
  EXPECT_TRUE(analyze_sources({{"tests/t.cpp", src}}, "", "registry.txt",
                              "", "design.md")
                  .empty());
  EXPECT_EQ(analyze_sources({{"src/t.cpp", src}}, "", "registry.txt", "",
                            "design.md")
                .size(),
            1U);
}

TEST(FmsAnalyze, PrefixWildcardsMatchBothWays) {
  // A trailing-dot literal in code (key assembled at runtime) matches a
  // documented `fms.x.<var>` family row, and vice versa.
  const std::string src =
      "void f(Registry& reg, const std::string& n) {\n"
      "  reg.gauge(\"fms.family.\" + n).set(1.0);\n"
      "}\n";
  const std::string design =
      "<!-- fms-analyze: metric-table-begin -->\n"
      "| `fms.family.<name>` | gauge | per-name family |\n"
      "<!-- fms-analyze: metric-table-end -->\n";
  EXPECT_TRUE(analyze_sources({{"src/t.cpp", src}}, "", "registry.txt",
                              design, "design.md")
                  .empty());
}

TEST(FmsAnalyze, TreeScanSkipsFixturesAndAcceptsFiles) {
  Options opts;
  opts.salt_registry_path = fixture_dir("empty") + "/registry.txt";
  opts.design_doc_path = fixture_dir("empty") + "/design.md";
  // The fixture directory is excluded from recursive scans by design...
  EXPECT_TRUE(
      analyze_tree({std::string(FMS_ANALYZE_FIXTURE_DIR)}, opts).empty());
  // ...but naming a fixture file directly is deliberate and analyzes it
  // (two unregistered salts against the empty registry).
  EXPECT_EQ(
      analyze_tree({fixture_dir("salt_unregistered") + "/src/a.cpp"}, opts)
          .size(),
      2U);
  EXPECT_THROW(analyze_tree({fixture_dir("no_such_dir")}, opts),
               fms::CheckError);
}

TEST(FmsAnalyze, CheckListIsStable) {
  std::vector<std::string> ids;
  for (const auto& c : fms::analyze::checks()) ids.emplace_back(c.id);
  EXPECT_EQ(ids, (std::vector<std::string>{
                     "salt-collision", "salt-unregistered", "salt-stale",
                     "checkpoint-asymmetry", "metric-undocumented",
                     "metric-stale", "detector-undocumented",
                     "detector-stale"}));
}

}  // namespace
