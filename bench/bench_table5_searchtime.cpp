// Table V — search time and sub-net size on SynthC10.
//
// Two complementary views:
//  (a) measured wall-clock seconds/round for each method on this machine
//      at bench scale, with the *measured* payload bytes per participant;
//  (b) extrapolated search hours at the PAPER's scale (8-cell / 4-node /
//      C=16 supernet on 32x32 images, batch 256, 6000 rounds), computed
//      from the analytic MAC model (src/nas/flops.h) and the calibrated
//      device profiles. The reproduction targets are the ratios: ours is
//      much cheaper per participant than FedNAS (mixed-op supernet) and
//      EvoFedNAS; TX2 is ~4-5x a 1080 Ti; the sub-net payload is a small
//      fraction of the supernet payload.
#include "bench/bench_common.h"
#include "src/baselines/evofednas.h"
#include "src/baselines/gradient_nas.h"
#include "src/nas/flops.h"
#include "src/sim/devices.h"

int main() {
  using namespace fms;
  bench::Workload w = bench::make_workload_c10(10, bench::Dist::kIid);
  SearchConfig cfg = bench::bench_search_config();
  const int probe_rounds = bench::scaled(12);
  const double total_rounds = 6000.0;  // paper's search schedule
  const int paper_batch = 256;

  // Paper-scale supernet for the analytic cost model.
  SupernetConfig paper;
  paper.num_cells = 8;
  paper.num_nodes = 4;
  paper.stem_channels = 16;
  paper.image_size = 32;

  // Average sub-model MACs under the uniform initial policy.
  Rng mask_rng(5);
  double sub_macs = 0.0;
  const int samples = 32;
  for (int i = 0; i < samples; ++i) {
    Mask m = random_mask(Cell::num_edges(paper.num_nodes), mask_rng);
    sub_macs += static_cast<double>(submodel_macs(paper, m));
  }
  sub_macs /= samples;
  const double mixed_macs = static_cast<double>(supernet_mixed_macs(paper));

  auto hours = [&](const DeviceProfile& dev, double macs_per_step,
                   double rounds) {
    const double flops = training_flops(
        static_cast<std::uint64_t>(macs_per_step), paper_batch);
    return compute_seconds(dev, flops) * rounds / 3600.0;
  };

  Table t("Table V — Search Time on SynthC10");
  t.columns({"Method", "measured s/round (CPU)",
             "paper-scale hours (cost model)", "payload/participant (MB)"});

  {  // Ours: measured CPU time + paper-scale cost per participant step.
    FederatedSearch search(cfg, w.data.train, w.partition);
    search.run_warmup(3);
    Stopwatch sw;
    search.run_search(probe_rounds, SearchOptions{});
    const double per_round = sw.elapsed_seconds() / probe_rounds;
    for (const DeviceProfile& dev : {gtx_1080ti(), jetson_tx2()}) {
      t.row({std::string("Ours (") + dev.name + ")", Table::num(per_round, 3),
             Table::num(hours(dev, sub_macs, total_rounds), 2),
             bench::mb(search.avg_submodel_bytes())});
    }
  }
  {  // FedNAS: full supernet payload + mixed-op compute on every client.
    FedNasSearch fednas(cfg.supernet, w.data.train, w.partition, cfg);
    const int fednas_probe = std::max(2, probe_rounds / 4);
    Stopwatch sw;
    GradNasResult res = fednas.run(fednas_probe, cfg.schedule.batch_size);
    const double per_round = sw.elapsed_seconds() / fednas_probe;
    t.row({"FedNAS (1080 Ti-class)", Table::num(per_round, 3),
           Table::num(hours(gtx_1080ti(), mixed_macs, total_rounds), 2),
           bench::mb(static_cast<double>(res.bytes_down_per_participant_round))});
  }
  {  // EvoFedNAS: whole candidate models travel; evolution needs far more
     // rounds to cover the space (paper: 16.1h vs <2.5h for ours).
    EvoFedNasSearch::Options eopts;
    eopts.population = 6;
    EvoFedNasSearch evo(cfg.supernet, w.data.train, w.partition, cfg, eopts);
    const int evo_probe = std::max(3, probe_rounds / 3);
    Stopwatch sw;
    auto res = evo.run(evo_probe, cfg.schedule.batch_size);
    const double per_round = sw.elapsed_seconds() / evo_probe;
    // Candidate cost at paper scale ~= a discretized genotype model.
    Rng grng(9);
    Genotype g = random_genotype(paper.num_nodes, grng);
    const double cand_macs = static_cast<double>(genotype_macs(paper, g));
    t.row({"EvoFedNAS (1080 Ti-class)", Table::num(per_round, 3),
           Table::num(hours(gtx_1080ti(), cand_macs, total_rounds * 4.0), 2),
           bench::mb(res.avg_model_bytes)});
  }

  t.print();
  t.write_csv("fms_table5_searchtime.csv");

  {  // Payload-ratio ablation: sub-model vs supernet bytes (measured).
    Rng rng(11);
    Supernet probe(cfg.supernet, rng);
    Mask m = random_mask(probe.num_edges(), rng);
    std::printf("\npayload ratio (sub-model / supernet): %.3f "
                "(op-only share is 1/N = %.3f; stem+preproc+classifier are "
                "always shipped)\n",
                static_cast<double>(probe.submodel_bytes(m)) /
                    static_cast<double>(probe.supernet_bytes()),
                1.0 / kNumOps);
  }
  std::printf(
      "paper reference: FedNAS <5h (1.93MB supernet payload), EvoFedNAS "
      "16.1h (4.23MB), Ours <2.5h on 1080Ti / <10h on TX2 (0.27MB)\n"
      "shape targets: ours cheapest per participant; TX2 ~4-5x slower than "
      "1080Ti; sub-net payload a small fraction of the supernet payload.\n");
  return 0;
}
