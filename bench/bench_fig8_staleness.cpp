// Fig. 8 — searching-phase performance on stale data (severe setting:
// 30% fresh / 40% one round late / 20% two rounds late / 10% dropped).
//
// Compares: no staleness (hard sync), our delay-compensated scheme,
// directly using stale data ("use"), and throwing it away ("throw").
// All four runs share the same warmed-up supernet state by construction
// (same seed and warm-up schedule), matching the paper's setup.
#include "bench/bench_common.h"
#include "src/obs/telemetry.h"

int main() {
  using namespace fms;
  SearchConfig cfg = bench::bench_search_config();
  const int warmup = bench::scaled(120);
  const int steps = bench::scaled(170);

  // All four variants stream into one labeled JSONL trace; the metrics CSV
  // snapshot (staleness tau histogram, compensated-update counters, span
  // timings) lands next to the bench's own CSV.
  TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.trace_jsonl_path = "fms_fig8_staleness_trace.jsonl";
  tcfg.metrics_csv_path = "fms_fig8_staleness_metrics.csv";
  obs::Telemetry::instance().configure(tcfg);

  struct Variant {
    const char* name;
    StalePolicy policy;
    StalenessDistribution dist;
  };
  const std::vector<Variant> variants = {
      {"no_staleness", StalePolicy::kHardSync, StalenessDistribution::none()},
      {"ours_dc", StalePolicy::kCompensate, StalenessDistribution::severe()},
      {"use", StalePolicy::kUseStale, StalenessDistribution::severe()},
      {"throw", StalePolicy::kDrop, StalenessDistribution::severe()},
  };

  std::vector<std::vector<RoundRecord>> curves;
  for (const auto& v : variants) {
    obs::Telemetry::instance().set_label(v.name);
    bench::Workload w = bench::make_workload_c10(10, bench::Dist::kIid);
    FederatedSearch search(cfg, w.data.train, w.partition);
    search.run_warmup(warmup);
    SearchOptions opts;
    opts.stale_policy = v.policy;
    opts.staleness = v.dist;
    curves.push_back(search.run_search(steps, opts));
  }

  Series s("Fig. 8 — Searching-Phase Performance on Stale Data (SynthC10, "
           "70% staleness; 50-round moving average)");
  s.axes("round",
         {"no_staleness", "ours_dc", "use", "throw"});
  for (int i = 0; i < steps; ++i) {
    std::vector<double> ys;
    for (const auto& c : curves) {
      ys.push_back(c[static_cast<std::size_t>(i)].moving_avg);
    }
    s.point(i, std::move(ys));
  }
  s.print(std::cout, std::max<std::size_t>(1, static_cast<std::size_t>(steps) / 25));
  s.write_csv("fms_fig8_staleness.csv");
  obs::Telemetry::instance().finish();

  std::printf("\nfinal moving averages:\n");
  for (std::size_t v = 0; v < variants.size(); ++v) {
    std::printf("  %-12s %.3f\n", variants[v].name,
                curves[v].back().moving_avg);
  }
  const double none_acc = curves[0].back().moving_avg;
  const double dc = curves[1].back().moving_avg;
  const double use = curves[2].back().moving_avg;
  const double thrown = curves[3].back().moving_avg;
  std::printf(
      "shape check (paper: ours ~ no-staleness > use > throw): %s\n",
      (dc >= use - 0.02 && use >= thrown - 0.02 && dc >= thrown &&
       none_acc > 0.1)
          ? "OK"
          : "PARTIAL");
  return 0;
}
