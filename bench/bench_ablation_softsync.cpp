// Ablation (DESIGN.md §5): what does soft synchronization buy, and what
// staleness does it induce?
//
// The paper motivates soft sync qualitatively ("stragglers will affect
// the whole system's performance") and chooses staleness distributions by
// hand for Fig. 8. This ablation closes the loop with the event-driven
// round-time simulator: for the Bus+Car participant mix on Jetson-class
// devices with straggler injection, it reports (a) wall-clock time per
// round under hard vs soft synchronization and (b) the staleness
// distribution the soft deadline actually induces — which lands near the
// paper's assumed 30/40/20/10 "severe" setting for aggressive deadlines.
#include "bench/bench_common.h"
#include "src/sim/round_time.h"

int main() {
  using namespace fms;
  const int participants = 10;
  std::vector<NetEnvironment> envs;
  for (int i = 0; i < participants; ++i) {
    envs.push_back(i < participants / 2 ? NetEnvironment::kBus
                                        : NetEnvironment::kCar);
  }

  Table t("Ablation — Hard vs Soft Synchronization (Bus+Car mix, "
          "TX2-class devices, 10% straggler injection)");
  t.columns({"wait fraction", "mean round (hard, s)", "mean round (soft, s)",
             "speedup", "fresh", "tau=1", "tau=2", "tau>2"});

  for (double wait : {1.0, 0.9, 0.8, 0.7, 0.5}) {
    RoundTimeConfig cfg;
    cfg.participants = participants;
    cfg.rounds = bench::scaled(400);
    cfg.wait_fraction = wait;
    Rng rng(static_cast<std::uint64_t>(wait * 100));
    RoundTimeResult res = simulate_round_time(cfg, envs, rng);
    const auto& st = res.induced_staleness;
    const double tau_gt2 = 1.0 - st[0] - st[1] - st[2];
    t.row({Table::num(wait, 2), Table::num(res.mean_hard_round, 3),
           Table::num(res.mean_soft_round, 3),
           Table::num(res.mean_hard_round / res.mean_soft_round, 2),
           Table::num(st[0], 2), Table::num(st[1], 2), Table::num(st[2], 2),
           Table::num(std::max(0.0, tau_gt2), 2)});
  }
  t.print();
  t.write_csv("fms_ablation_softsync.csv");
  std::printf(
      "\nreading: wait=1.0 is hard sync (all fresh, slowest rounds); "
      "lowering the wait fraction shortens rounds but shifts update mass "
      "to tau>=1 — exactly the staleness regime Fig. 8's "
      "delay-compensation experiments operate in.\n");
  return 0;
}
