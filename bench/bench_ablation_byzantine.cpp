// Ablation (DESIGN.md §7, "Byzantine robustness"): attack vs defense
// for Byzantine participants.
//
// The paper assumes honest-but-unreliable clients; this ablation measures
// what happens when 3 of 10 clients *lie* — sign-flipped gradients
// (lambda=10), amplified gradients (x10), and inflated rewards — and what
// each server-side estimator buys back. The "mean" column is the paper's
// Eq. 13 with no reward defense; every robust column runs the defense
// bundle (robust theta aggregator + reward winsorization at the 1.5 IQR
// Tukey fence + median REINFORCE baseline). Cells are the final 50-round
// moving-average training accuracy; higher is better.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/agg/aggregator.h"
#include "src/fault/fault.h"

int main() {
  using namespace fms;
  const int participants = 10;
  bench::Workload w = bench::make_workload_c10(participants, bench::Dist::kIid,
                                               /*seed=*/21);
  SearchConfig cfg = bench::bench_search_config();
  cfg.seed = 21;

  struct Attack {
    const char* name;
    const char* plan;  // empty = no attack
  };
  // Seeds are chosen so the persistent per-participant draw realizes the
  // advertised attacker counts on a 10-client fleet. The reward attack
  // stays at 2/10: the Tukey fence's upper quartile breaks down once
  // more than 25% of rewards sit above it.
  const std::vector<Attack> attacks = {
      {"no-attack", ""},
      {"sign-flip x10 (3/10)", "sign_flip=0.3,sign_flip_lambda=10,seed=2"},
      {"grad-scale x10 (3/10)", "grad_scale=0.3,grad_scale_lambda=10,seed=36"},
      {"reward +0.5 (2/10)",
       "reward_attack=0.2,reward_attack_delta=0.5,seed=12"},
  };
  const std::vector<std::string> aggregators = {
      "mean", "clipped_mean", "trimmed_mean:3", "krum:3", "multi_krum:3"};

  const int warmup = bench::scaled(10);
  // Long enough that the final moving-average window sits entirely past
  // the early-training transient: the attack-vs-defense comparison is
  // about where the trajectories settle, not how they start.
  const int rounds = bench::scaled(90);

  struct Cell {
    double acc = 0.0;      // final moving-average training accuracy
    double entropy = 0.0;  // final mean alpha entropy (policy collapse probe)
  };
  auto run_cell = [&](const Attack& attack, const std::string& agg_spec) {
    FederatedSearch search(cfg, w.data.train, w.partition);
    search.run_warmup(warmup);
    SearchOptions opts;
    if (attack.plan[0] != '\0') opts.fault_plan = FaultPlan::parse(attack.plan);
    opts.aggregator = agg::AggregatorConfig::parse(agg_spec);
    if (opts.aggregator.kind != agg::AggregatorKind::kMean) {
      // Defense bundle: the robust estimators ship with the adaptive
      // screen (rejects norm-visible attacks wholesale before estimation)
      // and the robust reward channel (a gradient aggregator alone cannot
      // defend alpha).
      opts.adaptive_screen = true;
      opts.winsorize_rewards_k = 1.5;
      opts.baseline_mode = BaselineMode::kMedianReward;
    }
    const auto records = search.run_search(rounds, opts);
    return Cell{records.back().moving_avg, records.back().alpha_entropy};
  };

  Table acc("Ablation — Byzantine attack vs robust aggregation "
            "(10 participants, final moving-average accuracy)");
  Table ent("Same grid — final mean alpha entropy "
            "(collapse probe: ln(8)=2.0794 means alpha stayed near "
            "uniform at this scale; raise FMS_SCALE to see drift)");
  Table csv("long-format grid");  // the CSV artifact
  std::vector<std::string> cols = {"attack"};
  cols.insert(cols.end(), aggregators.begin(), aggregators.end());
  acc.columns(cols);
  ent.columns(cols);
  csv.columns({"attack", "aggregator", "final_moving_avg",
               "final_alpha_entropy"});
  for (const Attack& attack : attacks) {
    std::vector<std::string> acc_row = {attack.name};
    std::vector<std::string> ent_row = {attack.name};
    for (const std::string& agg_spec : aggregators) {
      const Cell cell = run_cell(attack, agg_spec);
      acc_row.push_back(Table::num(cell.acc, 4));
      ent_row.push_back(Table::num(cell.entropy, 4));
      csv.row({attack.name, agg_spec, Table::num(cell.acc, 6),
               Table::num(cell.entropy, 6)});
    }
    acc.row(acc_row);
    ent.row(ent_row);
  }
  acc.print();
  std::printf("\n");
  ent.print();
  csv.write_csv("fms_ablation_byzantine.csv");
  std::printf(
      "\nreading: under no attack every estimator tracks the mean (the "
      "robustness tax is small); under sign-flip the plain mean degrades "
      "hard while the defense-bundle columns hold their attack-free "
      "values; grad-scale turns the mean's step size over to the "
      "attacker (the trajectory may even transiently rise - it is still "
      "attacker-controlled) while the defenses stay put; reward "
      "inflation bypasses gradient aggregation entirely and inflates the "
      "mean column's *reported* accuracy, which the winsorized reward "
      "channel + median baseline damp in the defense-bundle columns.\n");
  return 0;
}
