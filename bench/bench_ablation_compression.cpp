// Ablation (extension): lossy payload compression on top of sub-model
// transmission.
//
// The paper reduces communication by shipping sub-models (~1/N of the
// supernet). A deployment would additionally quantize the payloads; this
// ablation runs the same short search with float32 / float16 / int8
// payloads on both directions and reports bytes per round and the final
// searching accuracy — quantization noise flows through training, so the
// accuracy column shows what the compression actually costs.
#include "bench/bench_common.h"

int main() {
  using namespace fms;
  SearchConfig cfg = bench::bench_search_config();
  const int warmup = bench::scaled(100);
  const int steps = bench::scaled(120);

  Table t("Ablation — Payload Compression (SynthC10, i.i.d.)");
  t.columns({"codec", "KB/round down", "KB/round up", "final moving acc"});

  double acc_f32 = 0.0;
  for (Codec codec : {Codec::kFloat32, Codec::kFloat16, Codec::kInt8}) {
    bench::Workload w = bench::make_workload_c10(10, bench::Dist::kIid);
    FederatedSearch search(cfg, w.data.train, w.partition);
    search.run_warmup(warmup);
    SearchOptions opts;
    opts.codec = codec;
    auto records = search.run_search(steps, opts);
    double down = 0.0, up = 0.0;
    for (const auto& r : records) {
      down += static_cast<double>(r.bytes_down);
      up += static_cast<double>(r.bytes_up);
    }
    down /= steps * 1024.0;
    up /= steps * 1024.0;
    const double acc = records.back().moving_avg;
    if (codec == Codec::kFloat32) acc_f32 = acc;
    t.row({codec_name(codec), Table::num(down, 1), Table::num(up, 1),
           Table::num(acc, 3)});
  }
  t.print();
  t.write_csv("fms_ablation_compression.csv");
  std::printf(
      "\nreading: float16 halves and int8 quarters the payload on top of "
      "the paper's 1/N sub-model saving; the accuracy column shows the "
      "quantization cost (float16 should be ~free, int8 a small hit).\n");
  std::printf("float32 reference accuracy: %.3f\n", acc_f32);
  return 0;
}
