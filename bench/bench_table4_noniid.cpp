// Table IV — federated evaluation accuracies of searched models on
// NON-i.i.d. datasets (per-class Dirichlet(0.5) partitions): SynthC10 and
// SynthSVHN. Baselines: FedAvg with a big pre-defined residual model
// (the paper uses ResNet152, 58.2M params), FedNAS, EvoFedNAS.
#include "bench/bench_common.h"
#include "src/baselines/evofednas.h"
#include "src/baselines/gradient_nas.h"
#include "src/baselines/resnet_style.h"

namespace {

using namespace fms;

double federated_eval(TrainableNet& net, const bench::Workload& w,
                      const SearchConfig& cfg, int rounds, Rng& rng) {
  SGD::Options opts{cfg.retrain.lr_federated, cfg.retrain.momentum_federated,
                    cfg.retrain.weight_decay_federated,
                    cfg.retrain.clip_federated};
  RetrainResult res = federated_train(net, w.data.train, w.partition,
                                      w.data.test, rounds, 16, opts, nullptr,
                                      rng, 20);
  return res.best_test_accuracy;
}

void run_dataset(Table& t, const bench::Workload& w, const char* tag,
                 std::uint64_t seed, bool include_nas_baselines) {
  SearchConfig cfg = bench::bench_search_config();
  const int fl_rounds = bench::scaled(50);

  {  // FedAvg* with the big fixed model.
    ResNetStyleConfig rcfg;
    rcfg.base_channels = 16;
    rcfg.stage_blocks = {1, 1, 1};
    Rng rng(seed + 1);
    ResNetStyle net(rcfg, rng);
    Rng train_rng(seed + 2);
    const double acc = federated_eval(net, w, cfg, fl_rounds, train_rng);
    t.row({std::string("FedAvg* ") + tag, Table::num(bench::error_pct(acc), 2),
           Table::num(net.param_count() / 1e6, 3), "hand", "no"});
  }
  if (include_nas_baselines) {
    {  // FedNAS (full-supernet gradient-based).
      FedNasSearch fednas(cfg.supernet, w.data.train, w.partition, cfg);
      GradNasResult res = fednas.run(bench::scaled(20), 16);
      SupernetConfig eval_cfg = bench::eval_supernet_config();
      Rng net_rng(seed + 3);
      DiscreteNet net(res.genotype, eval_cfg, net_rng);
      Rng train_rng(seed + 4);
      const double acc = federated_eval(net, w, cfg, fl_rounds, train_rng);
      t.row({std::string("FedNAS ") + tag, Table::num(bench::error_pct(acc), 2),
             Table::num(net.param_count() / 1e6, 3), "grad", "yes"});
    }
    for (int nodes : {2, 1}) {  // EvoFedNAS big/small.
      EvoFedNasSearch::Options eopts;
      eopts.nodes = nodes;
      eopts.population = 6;
      eopts.evolve_every = 8;
      EvoFedNasSearch evo(cfg.supernet, w.data.train, w.partition, cfg, eopts);
      auto res = evo.run(bench::scaled(30), 16);
      SupernetConfig eval_cfg = bench::eval_supernet_config();
      eval_cfg.num_nodes = nodes;
      Rng net_rng(seed + 5 + nodes);
      DiscreteNet net(res.best, eval_cfg, net_rng);
      Rng train_rng(seed + 8 + nodes);
      const double acc = federated_eval(net, w, cfg, fl_rounds, train_rng);
      t.row({std::string(nodes == 2 ? "EvoFedNAS(big) " : "EvoFedNAS(small) ") +
                 tag,
             Table::num(bench::error_pct(acc), 2),
             Table::num(net.param_count() / 1e6, 3), "evol", "yes"});
    }
  }
  {  // Ours, searched on the same non-i.i.d. partition.
    auto search = bench::run_search(w, cfg, bench::scaled(60),
                                    bench::scaled(90), SearchOptions{});
    SupernetConfig eval_cfg = bench::eval_supernet_config();
    Rng net_rng(seed + 11);
    DiscreteNet net(search->derive(), eval_cfg, net_rng);
    Rng train_rng(seed + 12);
    const double acc = federated_eval(net, w, cfg, fl_rounds, train_rng);
    t.row({std::string("Ours (non-i.i.d.) ") + tag,
           Table::num(bench::error_pct(acc), 2),
           Table::num(net.param_count() / 1e6, 3), "RL", "yes"});
  }
}

}  // namespace

int main() {
  using namespace fms;
  Table t("Table IV — Federated Evaluation on Non-i.i.d. Datasets "
          "(Dirichlet 0.5)");
  t.columns({"Method", "Error(%)", "Param(M)", "Strategy", "NAS"});

  bench::Workload c10 = bench::make_workload_c10(10, bench::Dist::kDirichlet);
  run_dataset(t, c10, "[SynthC10]", 100, /*include_nas_baselines=*/true);
  bench::Workload svhn =
      bench::make_workload_svhn(10, bench::Dist::kDirichlet);
  run_dataset(t, svhn, "[SynthSVHN]", 200, /*include_nas_baselines=*/false);

  t.print();
  t.write_csv("fms_table4_noniid.csv");
  std::printf(
      "\npaper reference (CIFAR10): FedAvg*=22.40 (58.2M) FedNAS=18.76 "
      "(4.2M) EvoFedNAS(big)=18.73 EvoFedNAS(small)=21.06 Ours=18.56 "
      "(3.9M); (SVHN): FedAvg*=10.78 Ours=10.23 (2.5M)\n"
      "shape targets: searched models beat the big fixed model on "
      "non-i.i.d. data with far fewer parameters.\n");
  return 0;
}
