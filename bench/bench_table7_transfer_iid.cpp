// Table VII — transferability, i.i.d. case: architectures searched on
// SynthC10 are retrained and evaluated on i.i.d. SynthC100, compared to a
// pre-defined model of similar training budget. The paper reports
// competitive accuracies, supporting search-on-small / deploy-on-large.
#include "bench/bench_common.h"
#include "src/baselines/resnet_style.h"

int main() {
  using namespace fms;
  bench::Workload c10 = bench::make_workload_c10(10, bench::Dist::kIid);
  SearchConfig cfg = bench::bench_search_config();
  auto search = bench::run_search(c10, cfg, bench::scaled(90),
                                  bench::scaled(110), SearchOptions{});
  Genotype genotype = search->derive();

  bench::Workload c100 = bench::make_workload_c100(10, bench::Dist::kIid);
  SGD::Options opts{cfg.retrain.lr_centralized,
                    cfg.retrain.momentum_centralized,
                    cfg.retrain.weight_decay_centralized,
                    cfg.retrain.clip_centralized};

  Table t("Table VII — Transfer SynthC10 -> SynthC100 (i.i.d., centralized "
          "retrain)");
  t.columns({"Method", "Error(%)", "Param(M)"});

  {
    SupernetConfig eval_cfg = bench::eval_supernet_config(100);
    Rng net_rng(1);
    DiscreteNet net(genotype, eval_cfg, net_rng);
    Rng train_rng(2);
    AugmentConfig aug = cfg.augment;
    RetrainResult res =
        centralized_train(net, c100.data.train, c100.data.test,
                          bench::scaled(5), 32, opts, &aug, train_rng, 1);
    t.row({"Ours (searched on SynthC10)",
           Table::num(bench::error_pct(res.best_test_accuracy), 2),
           Table::num(net.param_count() / 1e6, 3)});
  }
  {
    ResNetStyleConfig rcfg;
    rcfg.num_classes = 100;
    rcfg.base_channels = 12;
    rcfg.stage_blocks = {1, 1, 1};
    Rng net_rng(3);
    ResNetStyle net(rcfg, net_rng);
    Rng train_rng(4);
    RetrainResult res =
        centralized_train(net, c100.data.train, c100.data.test,
                          bench::scaled(5), 32, opts, nullptr, train_rng, 1);
    t.row({"Pre-defined residual net",
           Table::num(bench::error_pct(res.best_test_accuracy), 2),
           Table::num(net.param_count() / 1e6, 3)});
  }

  t.print();
  t.write_csv("fms_table7_transfer_iid.csv");
  std::printf("\nshape target (paper Table VII): the transferred searched "
              "architecture is competitive on the larger label space.\n");
  return 0;
}
