// Fig. 7 — maximal transmission latency when sending a sub-net from the
// cloud to a participant across network environments, comparing the
// adaptive assignment (ours) against sending average-sized models and
// random assignment. "Bus+Car" mixes half bus, half car participants.
#include <array>

#include "bench/bench_common.h"
#include "src/net/trace.h"
#include "src/net/transmission.h"
#include "src/obs/telemetry.h"

int main() {
  using namespace fms;

  // Telemetry: span timings of every assign_models call plus one summary
  // event per (environment, strategy) pair into a JSONL trace.
  TelemetryConfig tcfg;
  tcfg.enabled = true;
  tcfg.trace_jsonl_path = "fms_fig7_transmission_trace.jsonl";
  tcfg.metrics_csv_path = "fms_fig7_transmission_metrics.csv";
  obs::Telemetry::instance().configure(tcfg);
  // Realistic sub-model size distribution: measured from sampled masks.
  SearchConfig cfg = bench::bench_search_config();
  Rng rng(7);
  Supernet supernet(cfg.supernet, rng);
  ArchPolicy policy(supernet.num_edges(), cfg.alpha);

  const int participants = 10;
  const int rounds = bench::scaled(300);

  struct EnvMix {
    std::string name;
    std::vector<NetEnvironment> envs;
  };
  std::vector<EnvMix> mixes;
  for (int e = 0; e < kNumNetEnvironments; ++e) {
    const auto env = static_cast<NetEnvironment>(e);
    mixes.push_back({net_environment_name(env),
                     std::vector<NetEnvironment>(participants, env)});
  }
  {  // The paper's mixed setting.
    std::vector<NetEnvironment> mix;
    for (int i = 0; i < participants; ++i) {
      mix.push_back(i < participants / 2 ? NetEnvironment::kBus
                                         : NetEnvironment::kCar);
    }
    mixes.push_back({"Bus+Car", std::move(mix)});
  }

  Table t("Fig. 7 — Maximal Transmission Latency (seconds, mean over rounds)");
  t.columns({"Environment", "adaptive (ours)", "average", "random"});
  Series s("Fig. 7 series");
  s.axes("env_index", {"adaptive", "average", "random"});

  int env_index = 0;
  for (const auto& mix : mixes) {
    obs::Telemetry::instance().set_label(mix.name);
    std::array<double, 3> totals{0.0, 0.0, 0.0};
    std::vector<BandwidthTrace> traces;
    Rng trace_seed(100 + env_index);
    for (auto env : mix.envs) traces.emplace_back(env, trace_seed.fork());
    Rng assign_rng(17);
    for (int round = 0; round < rounds; ++round) {
      std::vector<std::size_t> sizes;
      std::vector<double> bw;
      for (int p = 0; p < participants; ++p) {
        Mask m = policy.sample(assign_rng);
        sizes.push_back(supernet.submodel_bytes(m));
        bw.push_back(traces[static_cast<std::size_t>(p)].next_bps());
      }
      const AssignStrategy strategies[3] = {AssignStrategy::kAdaptive,
                                            AssignStrategy::kAverageSize,
                                            AssignStrategy::kRandom};
      for (int si = 0; si < 3; ++si) {
        auto assignment = assign_models(sizes, bw, strategies[si], assign_rng);
        totals[static_cast<std::size_t>(si)] +=
            transmission_latency(sizes, bw, assignment,
                                 strategies[si] == AssignStrategy::kAverageSize)
                .max_seconds;
      }
    }
    for (auto& v : totals) v /= rounds;
    t.row({mix.name, Table::num(totals[0], 4), Table::num(totals[1], 4),
           Table::num(totals[2], 4)});
    s.point(env_index++, {totals[0], totals[1], totals[2]});

    obs::TraceEvent ev;
    ev.type = "meta";
    ev.name = "fig7.max_latency";
    ev.fields = {{"adaptive_s", totals[0]},
                 {"average_s", totals[1]},
                 {"random_s", totals[2]}};
    obs::Telemetry::instance().emit(std::move(ev));
  }

  t.print();
  s.write_csv("fms_fig7_transmission.csv");
  obs::Telemetry::instance().finish();
  std::printf(
      "\nshape target (paper Fig. 7): adaptive has the lowest maximal "
      "latency in every environment; vehicular environments (train/car) "
      "are slower than pedestrian ones.\n");
  return 0;
}
