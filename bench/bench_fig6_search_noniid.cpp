// Fig. 6 — searching phase on non-i.i.d. SynthC10 (per-class
// Dirichlet(0.5) partition). The paper finds the same qualitative curve
// as the i.i.d. case but with slower convergence — the "price paid for
// non-i.i.d. distributions".
#include "bench/bench_common.h"

int main() {
  using namespace fms;
  SearchConfig cfg = bench::bench_search_config();
  const int warmup = bench::scaled(120);
  const int steps = bench::scaled(160);

  auto run = [&](bench::Dist dist) {
    bench::Workload w = bench::make_workload_c10(10, dist);
    FederatedSearch search(cfg, w.data.train, w.partition);
    search.run_warmup(warmup);
    return search.run_search(steps, SearchOptions{});
  };

  auto noniid = run(bench::Dist::kDirichlet);
  auto iid = run(bench::Dist::kIid);

  Series s("Fig. 6 — Searching Phase on non-i.i.d. SynthC10 (vs i.i.d.)");
  s.axes("round", {"noniid_moving_avg", "iid_moving_avg"});
  for (std::size_t i = 0; i < noniid.size(); ++i) {
    s.point(static_cast<double>(i), {noniid[i].moving_avg, iid[i].moving_avg});
  }
  s.print(std::cout, std::max<std::size_t>(1, noniid.size() / 25));
  s.write_csv("fms_fig6_search_noniid.csv");

  // Convergence-speed proxy: rounds to reach 60% of the final level.
  auto rounds_to = [](const std::vector<RoundRecord>& r, double frac) {
    const double target = frac * r.back().moving_avg;
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (r[i].moving_avg >= target) return static_cast<int>(i);
    }
    return static_cast<int>(r.size());
  };
  std::printf("\nrounds to 60%% of final level — non-iid: %d, iid: %d\n",
              rounds_to(noniid, 0.6), rounds_to(iid, 0.6));
  std::printf("final moving avg — non-iid: %.3f, iid: %.3f\n",
              noniid.back().moving_avg, iid.back().moving_avg);
  std::printf("shape check (both converge, non-iid no faster): %s\n",
              noniid.back().moving_avg > 0.12 ? "OK" : "NOT REPRODUCED");
  return 0;
}
