// Table III — federated evaluation accuracies of searched models on
// i.i.d. SynthC10: the searched architectures are retrained *federatedly*
// (FedAvg, P3) and tested. Baselines: a pre-defined fixed model trained
// with FedAvg, and EvoFedNAS (big and small search spaces).
#include "bench/bench_common.h"
#include "src/baselines/evofednas.h"
#include "src/baselines/resnet_style.h"

namespace {

using namespace fms;

double federated_eval(TrainableNet& net, const bench::Workload& w,
                      const SearchConfig& cfg, int rounds, Rng& rng) {
  SGD::Options opts{cfg.retrain.lr_federated, cfg.retrain.momentum_federated,
                    cfg.retrain.weight_decay_federated,
                    cfg.retrain.clip_federated};
  RetrainResult res = federated_train(net, w.data.train, w.partition,
                                      w.data.test, rounds, 16, opts, nullptr,
                                      rng, 20);
  return res.best_test_accuracy;
}

}  // namespace

int main() {
  using namespace fms;
  bench::Workload w = bench::make_workload_c10(10, bench::Dist::kIid);
  SearchConfig cfg = bench::bench_search_config();
  const int fl_rounds = bench::scaled(100);

  Table t("Table III — Federated Evaluation Accuracies of Searched Models "
          "on SynthC10 (i.i.d.)");
  t.columns({"Method", "Error(%)", "Param(M)", "Strategy", "FL", "NAS"});

  // FedAvg with a pre-defined (hand-designed) model.
  {
    ResNetStyleConfig rcfg;
    Rng rng(11);
    ResNetStyle net(rcfg, rng);
    Rng train_rng(12);
    const double acc = federated_eval(net, w, cfg, fl_rounds, train_rng);
    t.row({"FedAvg (pre-defined)", Table::num(bench::error_pct(acc), 2),
           Table::num(net.param_count() / 1e6, 3), "hand", "yes", "no"});
  }

  // EvoFedNAS big / small.
  auto evo_row = [&](int nodes, const char* name) {
    EvoFedNasSearch::Options eopts;
    eopts.nodes = nodes;
    eopts.population = 6;
    eopts.evolve_every = 8;
    EvoFedNasSearch evo(cfg.supernet, w.data.train, w.partition, cfg, eopts);
    auto res = evo.run(bench::scaled(40), 16);
    SupernetConfig eval_cfg = bench::eval_supernet_config();
    eval_cfg.num_nodes = nodes;
    Rng net_rng(21 + nodes);
    DiscreteNet net(res.best, eval_cfg, net_rng);
    Rng train_rng(31 + nodes);
    const double acc = federated_eval(net, w, cfg, fl_rounds, train_rng);
    t.row({name, Table::num(bench::error_pct(acc), 2),
           Table::num(net.param_count() / 1e6, 3), "evol", "yes", "yes"});
  };
  evo_row(2, "EvoFedNAS (big)");
  evo_row(1, "EvoFedNAS (small)");

  // Ours (hard sync) and Ours at 10% staleness.
  auto ours_row = [&](StalePolicy policy, const StalenessDistribution& dist,
                      const char* name, std::uint64_t seed) {
    SearchOptions opts;
    opts.stale_policy = policy;
    opts.staleness = dist;
    auto search = bench::run_search(w, cfg, bench::scaled(80),
                                    bench::scaled(100), opts);
    SupernetConfig eval_cfg = bench::eval_supernet_config();
    Rng net_rng(seed);
    DiscreteNet net(search->derive(), eval_cfg, net_rng);
    Rng train_rng(seed ^ 0xf1);
    const double acc = federated_eval(net, w, cfg, fl_rounds, train_rng);
    t.row({name, Table::num(bench::error_pct(acc), 2),
           Table::num(net.param_count() / 1e6, 3), "RL", "yes", "yes"});
  };
  ours_row(StalePolicy::kHardSync, StalenessDistribution::none(), "Ours", 41);
  ours_row(StalePolicy::kCompensate, StalenessDistribution::slight(),
           "Ours (10% staleness)", 43);

  t.print();
  t.write_csv("fms_table3_federated.csv");
  std::printf(
      "\npaper reference: FedAvg=15.00 EvoFedNAS(big)=13.32 "
      "EvoFedNAS(small)=16.64 Ours=13.36 Ours10=13.25 (Error%%)\n"
      "shape targets: NAS methods beat the pre-defined model; small "
      "evo space is worst; ours competitive with EvoFedNAS(big) at a "
      "smaller model size.\n");
  return 0;
}
