// Fig. 3 — warm-up phase (P1) on i.i.d. SynthC10.
//
// Plots the average training accuracy of the 10 participants' sampled
// sub-models per round plus the 50-round moving average. The paper's
// curve rises from chance toward convergence; the shape (steady rise,
// noisy per-round line, smooth moving average) is the reproduction
// target.
#include "bench/bench_common.h"

int main() {
  using namespace fms;
  bench::Workload w = bench::make_workload_c10(10, bench::Dist::kIid);
  SearchConfig cfg = bench::bench_search_config();
  FederatedSearch search(cfg, w.data.train, w.partition);
  const int rounds = bench::scaled(220);
  auto records = search.run_warmup(rounds);

  Series s("Fig. 3 — Warm-up Phase on i.i.d. SynthC10 (avg participant "
           "training accuracy)");
  s.axes("round", {"train_acc", "moving_avg_50"});
  for (const auto& r : records) {
    s.point(r.round, {r.mean_reward, r.moving_avg});
  }
  s.print(std::cout, std::max<std::size_t>(1, records.size() / 25));
  s.write_csv("fms_fig3_warmup.csv");

  const double start = records.front().moving_avg;
  const double end = records.back().moving_avg;
  std::printf("\nmoving average: %.3f -> %.3f (chance = 0.100)\n", start, end);
  std::printf("shape check (rises during warm-up): %s\n",
              end > start + 0.03 ? "OK" : "NOT REPRODUCED");
  return 0;
}
