// Ablation (DESIGN.md, "Churn & graceful degradation"): churn regime vs
// round-deadline policy.
//
// The paper's protocol waits on a fixed participant set; under churn a
// fixed (or absent) round timeout leaves the server waiting on straggler
// tails that retransmits and link faults stretch out, while the adaptive
// windowed-quantile deadline caps each round near the fleet's recent p90
// and folds the tail into the soft-sync/DC path. Rows are churn regimes
// (steady background churn, a burst mass-leave, diurnal phases); columns
// compare a fixed generous timeout against the adaptive deadline, both
// with the full degradation ladder armed. "sim time" is the summed
// simulated commit latency of the whole search — the wall-clock a real
// deployment would burn — and lower is better as long as the final
// accuracy holds.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/fault/fault.h"
#include "src/sim/churn.h"

int main() {
  using namespace fms;
  const int participants = 10;
  bench::Workload w = bench::make_workload_c10(participants, bench::Dist::kIid,
                                               /*seed=*/23);
  SearchConfig cfg = bench::bench_search_config();
  cfg.seed = 23;

  const int warmup = bench::scaled(10);
  const int rounds = bench::scaled(60);

  struct Regime {
    const char* name;
    std::string plan;
  };
  const std::vector<Regime> regimes = {
      {"no churn", ""},
      {"steady 20%", "leave=0.08,away_min=2,away_max=4,seed=4"},
      {"burst 60%", "leave=0.04,away_min=2,away_max=4,burst=0.6,burst_round=" +
                        std::to_string(warmup + rounds / 3) +
                        ",burst_away=12,seed=4"},
      {"diurnal", "leave=0.12,diurnal=1.0,diurnal_period=20,seed=4"},
  };

  struct Cell {
    double sim_time_s = 0.0;  // summed commit latency across the search
    double acc = 0.0;         // final moving-average training accuracy
    int partial_rounds = 0;
    int transitions = 0;
  };
  auto run_cell = [&](const Regime& regime, bool adaptive) {
    FederatedSearch search(cfg, w.data.train, w.partition);
    search.run_warmup(warmup);
    SearchOptions opts;
    opts.stale_policy = StalePolicy::kCompensate;
    opts.quorum = 0.8;
    // Flaky links on both directions give every round a retransmit tail —
    // the straggler mass a deadline policy has to manage.
    opts.fault_plan = FaultPlan::parse(
        "link=0.25,uplink=0.2,backoff_jitter=0.5,seed=7");
    if (!regime.plan.empty()) opts.churn_plan = ChurnPlan::parse(regime.plan);
    opts.degrade.max_mode = 3;
    if (adaptive) {
      opts.adaptive_timeout.enabled = true;
      opts.adaptive_timeout.window = 40;
    } else {
      opts.round_timeout_s = 60.0;  // generous: effectively tail-bound
    }
    Cell cell;
    const auto records = search.run_search(rounds, opts);
    for (const auto& rec : records) {
      cell.sim_time_s += rec.commit_latency_s;
      if (rec.partial_quorum) ++cell.partial_rounds;
    }
    cell.acc = records.back().moving_avg;
    cell.transitions = search.degrade_transitions();
    return cell;
  };

  Table tab("Ablation — churn regime vs round-deadline policy "
            "(10 participants, flaky links; summed simulated commit time)");
  tab.columns({"regime", "fixed sim s", "adaptive sim s", "fixed acc",
               "adaptive acc"});
  Table csv("long-format grid");
  csv.columns({"regime", "deadline", "sim_time_s", "final_moving_avg",
               "partial_rounds", "degrade_transitions"});
  for (const Regime& regime : regimes) {
    const Cell fixed = run_cell(regime, /*adaptive=*/false);
    const Cell adap = run_cell(regime, /*adaptive=*/true);
    tab.row({regime.name, Table::num(fixed.sim_time_s, 1),
             Table::num(adap.sim_time_s, 1), Table::num(fixed.acc, 4),
             Table::num(adap.acc, 4)});
    csv.row({regime.name, "fixed", Table::num(fixed.sim_time_s, 3),
             Table::num(fixed.acc, 6), Table::num(fixed.partial_rounds, 0),
             Table::num(fixed.transitions, 0)});
    csv.row({regime.name, "adaptive", Table::num(adap.sim_time_s, 3),
             Table::num(adap.acc, 6), Table::num(adap.partial_rounds, 0),
             Table::num(adap.transitions, 0)});
  }
  tab.print();
  csv.write_csv("fms_ablation_churn.csv");
  std::printf(
      "\nreading: the fixed column pays the straggler tail every round — "
      "the commit waits on the slowest quorum member however long its "
      "retransmit backoff stacked up — while the adaptive column caps "
      "rounds near the recent p90 and folds the tail into delay "
      "compensation, so its summed simulated time drops well below the "
      "fixed column (most visibly in the burst row) at comparable final "
      "accuracy.\n");
  return 0;
}
