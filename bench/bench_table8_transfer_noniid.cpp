// Table VIII — transferability, non-i.i.d. case: the architecture
// searched on non-i.i.d. SynthC10 is retrained federatedly on non-i.i.d.
// SynthC100 and compared against a pre-defined model.
#include "bench/bench_common.h"
#include "src/baselines/resnet_style.h"

int main() {
  using namespace fms;
  bench::Workload c10 = bench::make_workload_c10(10, bench::Dist::kDirichlet);
  SearchConfig cfg = bench::bench_search_config();
  auto search = bench::run_search(c10, cfg, bench::scaled(70),
                                  bench::scaled(110), SearchOptions{});
  Genotype genotype = search->derive();

  bench::Workload c100 =
      bench::make_workload_c100(10, bench::Dist::kDirichlet);
  SGD::Options fl_opts{cfg.retrain.lr_federated,
                       cfg.retrain.momentum_federated,
                       cfg.retrain.weight_decay_federated,
                       cfg.retrain.clip_federated};
  const int rounds = bench::scaled(80);

  Table t("Table VIII — Transfer Non-i.i.d. SynthC10 -> Non-i.i.d. "
          "SynthC100 (federated retrain)");
  t.columns({"Method", "Error(%)", "Param(M)"});

  {
    SupernetConfig eval_cfg = bench::eval_supernet_config(100);
    Rng net_rng(1);
    DiscreteNet net(genotype, eval_cfg, net_rng);
    Rng train_rng(2);
    RetrainResult res =
        federated_train(net, c100.data.train, c100.partition, c100.data.test,
                        rounds, 16, fl_opts, nullptr, train_rng, 20);
    t.row({"Ours (searched on non-i.i.d. SynthC10)",
           Table::num(bench::error_pct(res.best_test_accuracy), 2),
           Table::num(net.param_count() / 1e6, 3)});
  }
  {
    ResNetStyleConfig rcfg;
    rcfg.num_classes = 100;
    rcfg.base_channels = 12;
    rcfg.stage_blocks = {1, 1, 1};
    Rng net_rng(3);
    ResNetStyle net(rcfg, net_rng);
    Rng train_rng(4);
    RetrainResult res =
        federated_train(net, c100.data.train, c100.partition, c100.data.test,
                        rounds, 16, fl_opts, nullptr, train_rng, 20);
    t.row({"Pre-defined residual net",
           Table::num(bench::error_pct(res.best_test_accuracy), 2),
           Table::num(net.param_count() / 1e6, 3)});
  }

  t.print();
  t.write_csv("fms_table8_transfer_noniid.csv");
  std::printf("\nshape target (paper Table VIII): the searched architecture "
              "transfers with competitive accuracy under non-i.i.d. "
              "federated training.\n");
  return 0;
}
