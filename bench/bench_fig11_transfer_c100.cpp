// Fig. 11 — average accuracy vs rounds when transferring models to
// non-i.i.d. SynthC100: the architecture searched on SynthC10 is
// re-instantiated with 100 output classes and trained federatedly on
// SynthC100. The paper's finding: the big pre-defined model reaches a
// higher *training* accuracy but a lower *validation* accuracy — it
// merely overfits the non-i.i.d. shards — while the searched model
// generalizes better.
#include "bench/bench_common.h"
#include "src/baselines/resnet_style.h"

int main() {
  using namespace fms;
  // Search on SynthC10 (i.i.d.), transfer the genotype to SynthC100.
  bench::Workload c10 = bench::make_workload_c10(10, bench::Dist::kIid);
  SearchConfig cfg = bench::bench_search_config();
  auto search = bench::run_search(c10, cfg, bench::scaled(90),
                                  bench::scaled(110), SearchOptions{});
  Genotype genotype = search->derive();

  bench::Workload c100 =
      bench::make_workload_c100(10, bench::Dist::kDirichlet);
  const int rounds = bench::scaled(100);
  SGD::Options fl_opts{cfg.retrain.lr_federated, cfg.retrain.momentum_federated,
                       cfg.retrain.weight_decay_federated,
                       cfg.retrain.clip_federated};

  SupernetConfig eval_cfg = bench::eval_supernet_config(/*num_classes=*/100);
  Rng ours_rng(1);
  DiscreteNet ours(genotype, eval_cfg, ours_rng);

  ResNetStyleConfig rcfg;
  rcfg.num_classes = 100;
  Rng rn_rng(2);
  ResNetStyle resnet(rcfg, rn_rng);

  Rng t1(11), t2(12);
  RetrainResult r_ours = federated_train(ours, c100.data.train, c100.partition,
                                         c100.data.test, rounds, 16, fl_opts,
                                         nullptr, t1, 10);
  RetrainResult r_resnet =
      federated_train(resnet, c100.data.train, c100.partition, c100.data.test,
                      rounds, 16, fl_opts, nullptr, t2, 10);

  Series s("Fig. 11 — Transfer to Non-i.i.d. SynthC100 (federated)");
  s.axes("round", {"ours_train", "resnet_train", "ours_val", "resnet_val"});
  for (int i = 0; i < rounds; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    s.point(i, {r_ours.curve[ii].train_acc, r_resnet.curve[ii].train_acc,
                r_ours.curve[ii].val_acc, r_resnet.curve[ii].val_acc});
  }
  s.print(std::cout, std::max<std::size_t>(1, static_cast<std::size_t>(rounds) / 20));
  s.write_csv("fms_fig11_transfer_c100.csv");

  const double ours_gap =
      r_ours.curve.back().train_acc - r_ours.final_test_accuracy;
  const double resnet_gap =
      r_resnet.curve.back().train_acc - r_resnet.final_test_accuracy;
  std::printf("\nfinal — ours: train %.3f val %.3f (gap %.3f); resnet: train "
              "%.3f val %.3f (gap %.3f)\n",
              r_ours.curve.back().train_acc, r_ours.final_test_accuracy,
              ours_gap, r_resnet.curve.back().train_acc,
              r_resnet.final_test_accuracy, resnet_gap);
  std::printf("shape check (searched model has the smaller overfitting gap "
              "or the better val acc): %s\n",
              (ours_gap <= resnet_gap + 0.02 ||
               r_ours.final_test_accuracy >= r_resnet.final_test_accuracy)
                  ? "OK"
                  : "NOT REPRODUCED");
  return 0;
}
