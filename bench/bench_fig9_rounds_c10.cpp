// Fig. 9 — average accuracy vs communication rounds on non-i.i.d.
// SynthC10 during federated retraining (P3): our searched model vs a big
// pre-defined residual model (paper: ResNet152) vs FedNAS's searched
// model. The paper's finding: our searched model converges in fewer
// rounds.
#include "bench/bench_common.h"
#include "src/baselines/gradient_nas.h"
#include "src/baselines/resnet_style.h"

int main() {
  using namespace fms;
  bench::Workload w = bench::make_workload_c10(10, bench::Dist::kDirichlet);
  SearchConfig cfg = bench::bench_search_config();
  const int rounds = bench::scaled(100);
  SGD::Options fl_opts{cfg.retrain.lr_federated, cfg.retrain.momentum_federated,
                       cfg.retrain.weight_decay_federated,
                       cfg.retrain.clip_federated};

  // Our searched genotype.
  auto search = bench::run_search(w, cfg, bench::scaled(90),
                                  bench::scaled(110), SearchOptions{});
  SupernetConfig eval_cfg = bench::eval_supernet_config();
  Rng ours_rng(1);
  DiscreteNet ours(search->derive(), eval_cfg, ours_rng);

  // FedNAS's searched genotype.
  FedNasSearch fednas(cfg.supernet, w.data.train, w.partition, cfg);
  GradNasResult fn = fednas.run(bench::scaled(30), 16);
  Rng fn_rng(2);
  DiscreteNet fednas_net(fn.genotype, eval_cfg, fn_rng);

  // Pre-defined big model.
  ResNetStyleConfig rcfg;
  Rng rn_rng(3);
  ResNetStyle resnet(rcfg, rn_rng);

  Rng t1(11), t2(12), t3(13);
  RetrainResult r_ours = federated_train(ours, w.data.train, w.partition,
                                         w.data.test, rounds, 16, fl_opts,
                                         nullptr, t1, 10);
  RetrainResult r_fednas = federated_train(fednas_net, w.data.train,
                                           w.partition, w.data.test, rounds,
                                           16, fl_opts, nullptr, t2, 10);
  RetrainResult r_resnet = federated_train(resnet, w.data.train, w.partition,
                                           w.data.test, rounds, 16, fl_opts,
                                           nullptr, t3, 10);

  Series s("Fig. 9 — Average Accuracy vs Rounds on Non-i.i.d. SynthC10 "
           "(federated P3)");
  s.axes("round", {"ours_train", "fednas_train", "resnet_train", "ours_val",
                   "fednas_val", "resnet_val"});
  for (int i = 0; i < rounds; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    s.point(i, {r_ours.curve[ii].train_acc, r_fednas.curve[ii].train_acc,
                r_resnet.curve[ii].train_acc, r_ours.curve[ii].val_acc,
                r_fednas.curve[ii].val_acc, r_resnet.curve[ii].val_acc});
  }
  s.print(std::cout, std::max<std::size_t>(1, static_cast<std::size_t>(rounds) / 20));
  s.write_csv("fms_fig9_rounds_c10.csv");

  std::printf("\nfinal val acc — ours %.3f (%.2fM), fednas %.3f (%.2fM), "
              "resnet %.3f (%.2fM)\n",
              r_ours.final_test_accuracy, ours.param_count() / 1e6,
              r_fednas.final_test_accuracy, fednas_net.param_count() / 1e6,
              r_resnet.final_test_accuracy, resnet.param_count() / 1e6);
  std::printf("shape check (searched models competitive with the much "
              "bigger fixed model): %s\n",
              r_ours.final_test_accuracy >=
                      r_resnet.final_test_accuracy - 0.05
                  ? "OK"
                  : "NOT REPRODUCED");
  return 0;
}
