// Fig. 4 — searching phase (P2) on i.i.d. SynthC10: joint alpha + theta
// optimization after warm-up. The paper's curve continues to climb past
// the warm-up level as the controller concentrates probability mass on
// stronger operations.
#include "bench/bench_common.h"

int main() {
  using namespace fms;
  bench::Workload w = bench::make_workload_c10(10, bench::Dist::kIid);
  SearchConfig cfg = bench::bench_search_config();
  FederatedSearch search(cfg, w.data.train, w.partition);
  const int warmup = bench::scaled(120);
  const int steps = bench::scaled(160);
  auto warm_records = search.run_warmup(warmup);
  auto records = search.run_search(steps, SearchOptions{});

  Series s("Fig. 4 — Searching Phase on i.i.d. SynthC10");
  s.axes("round", {"train_acc", "moving_avg_50"});
  for (const auto& r : records) s.point(r.round, {r.mean_reward, r.moving_avg});
  s.print(std::cout, std::max<std::size_t>(1, records.size() / 25));
  s.write_csv("fms_fig4_search_iid.csv");

  std::printf("\nwarm-up end moving avg: %.3f, search end moving avg: %.3f\n",
              warm_records.back().moving_avg, records.back().moving_avg);
  std::printf("derived genotype: %s\n", search.derive().to_string().c_str());
  std::printf("shape check (search continues to improve): %s\n",
              records.back().moving_avg >
                      warm_records.back().moving_avg - 0.01
                  ? "OK"
                  : "NOT REPRODUCED");
  return 0;
}
