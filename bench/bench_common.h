// Shared setup for the experiment benches (one binary per paper table /
// figure). Every bench:
//   * builds the synthetic workload at "bench scale" — small enough that
//     the full sweep runs on a single CPU core, large enough that the
//     comparative shapes of the paper's results emerge;
//   * prints the paper-style table/series to stdout; and
//   * mirrors the rows to a CSV file named fms_<bench>.csv in the CWD.
// Set FMS_SCALE > 1 to lengthen schedules toward the paper's settings.
#pragma once

#include <cstdio>
#include <string>

#include "src/common/config.h"
#include "src/common/stopwatch.h"
#include "src/common/table.h"
#include "src/core/retrain.h"
#include "src/core/search.h"
#include "src/data/synth.h"
#include "src/nas/discrete_net.h"

namespace fms::bench {

inline int scaled(int rounds) {
  return static_cast<int>(rounds * env_scale());
}

// Supernet scale used during search (paper: 8 cells, 4 nodes, C=16, 32x32).
inline SupernetConfig search_supernet_config(int num_classes = 10) {
  SupernetConfig cfg;
  cfg.num_cells = 3;
  cfg.num_nodes = 2;
  cfg.stem_channels = 6;
  cfg.image_size = 8;
  cfg.num_classes = num_classes;
  return cfg;
}

// Evaluation-scale model (paper: 20 cells, C=36). Slightly deeper/wider
// than the search supernet, mirroring the paper's search->evaluate scale-up.
inline SupernetConfig eval_supernet_config(int num_classes = 10) {
  SupernetConfig cfg = search_supernet_config(num_classes);
  cfg.num_cells = 4;
  cfg.stem_channels = 8;
  return cfg;
}

inline SearchConfig bench_search_config(int num_classes = 10) {
  SearchConfig cfg = default_config();
  cfg.supernet = search_supernet_config(num_classes);
  cfg.schedule.batch_size = 16;
  cfg.schedule.num_participants = 10;
  cfg.augment.cutout = 2;
  cfg.augment.random_clip = 1;
  return cfg;
}

inline SynthSpec bench_synth_spec() {
  SynthSpec spec;
  spec.train_size = 1500;
  spec.test_size = 400;
  spec.image_size = 8;
  return spec;
}

struct Workload {
  TrainTest data;
  std::vector<std::vector<int>> partition;
};

enum class Dist { kIid, kDirichlet };

inline Workload make_workload_c10(int participants, Dist dist,
                                  std::uint64_t seed = 1) {
  Rng rng(seed);
  Workload w{make_synth_c10(bench_synth_spec(), rng), {}};
  Rng part_rng(seed ^ 0x9a27);
  w.partition =
      dist == Dist::kIid
          ? iid_partition(w.data.train.size(), participants, part_rng)
          : dirichlet_partition(w.data.train.labels(), 10, participants, 0.5,
                                part_rng);
  return w;
}

inline Workload make_workload_svhn(int participants, Dist dist,
                                   std::uint64_t seed = 2) {
  Rng rng(seed);
  Workload w{make_synth_svhn(bench_synth_spec(), rng), {}};
  Rng part_rng(seed ^ 0x51a7);
  w.partition =
      dist == Dist::kIid
          ? iid_partition(w.data.train.size(), participants, part_rng)
          : dirichlet_partition(w.data.train.labels(), 10, participants, 0.5,
                                part_rng);
  return w;
}

inline Workload make_workload_c100(int participants, Dist dist,
                                   std::uint64_t seed = 3) {
  Rng rng(seed);
  SynthSpec spec = bench_synth_spec();
  spec.train_size = 3000;  // 100 classes need more samples
  spec.test_size = 500;
  Workload w{make_synth_c100(spec, rng), {}};
  Rng part_rng(seed ^ 0xc100);
  w.partition =
      dist == Dist::kIid
          ? iid_partition(w.data.train.size(), participants, part_rng)
          : dirichlet_partition(w.data.train.labels(), 100, participants, 0.5,
                                part_rng);
  return w;
}

// Runs warm-up + search and returns the searcher (for genotype/stats).
inline std::unique_ptr<FederatedSearch> run_search(
    const Workload& w, const SearchConfig& cfg, int warmup_rounds,
    int search_rounds, const SearchOptions& opts,
    std::vector<RoundRecord>* search_records = nullptr) {
  auto search = std::make_unique<FederatedSearch>(cfg, w.data.train,
                                                  w.partition);
  search->run_warmup(warmup_rounds);
  auto records = search->run_search(search_rounds, opts);
  if (search_records != nullptr) *search_records = std::move(records);
  return search;
}

// Percentage error (the paper reports Error(%)).
inline double error_pct(double accuracy) { return 100.0 * (1.0 - accuracy); }

inline std::string mb(double bytes) {
  return Table::num(bytes / (1024.0 * 1024.0), 3);
}

}  // namespace fms::bench
