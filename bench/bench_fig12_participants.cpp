// Fig. 12 — searching-phase performance vs number of participants
// (10 / 20 / 50), SynthC10 split equally. The paper's findings: more
// participants converge faster, reach a higher searching-phase accuracy,
// and show smaller fluctuation across participants.
#include "bench/bench_common.h"

int main() {
  using namespace fms;
  const std::vector<int> ks = {10, 20, 50};
  const int warmup = bench::scaled(60);
  const int steps = bench::scaled(100);

  std::vector<std::vector<RoundRecord>> curves;
  std::vector<double> final_levels;
  for (int k : ks) {
    bench::Workload w = bench::make_workload_c10(k, bench::Dist::kIid);
    SearchConfig cfg = bench::bench_search_config();
    cfg.schedule.num_participants = k;
    FederatedSearch search(cfg, w.data.train, w.partition);
    search.run_warmup(warmup);
    curves.push_back(search.run_search(steps, SearchOptions{}));
    final_levels.push_back(curves.back().back().moving_avg);
  }

  Series s("Fig. 12 — Searching-Phase Performance vs Number of "
           "Participants (50-round moving average)");
  s.axes("round", {"K=10", "K=20", "K=50"});
  for (int i = 0; i < steps; ++i) {
    std::vector<double> ys;
    for (const auto& c : curves) ys.push_back(c[static_cast<std::size_t>(i)].moving_avg);
    s.point(i, std::move(ys));
  }
  s.print(std::cout, std::max<std::size_t>(1, static_cast<std::size_t>(steps) / 20));
  s.write_csv("fms_fig12_participants.csv");

  // Fluctuation proxy: stddev of the per-round mean reward over the last
  // third of the search.
  std::printf("\nper-K summary:\n");
  for (std::size_t i = 0; i < ks.size(); ++i) {
    std::vector<double> tail;
    for (std::size_t r = curves[i].size() * 2 / 3; r < curves[i].size(); ++r) {
      tail.push_back(curves[i][r].mean_reward);
    }
    std::printf("  K=%-3d final moving avg %.3f, tail stddev %.3f\n", ks[i],
                final_levels[i], stddev_of(tail));
  }
  // The paper's strongest, most transferable claim at this scale is the
  // fluctuation one: more participants average more sub-model rewards per
  // round, so the per-round accuracy varies less. Final levels should
  // stay in a narrow band (paper Table VI: accuracy ~independent of K).
  std::vector<double> tail10, tail50;
  for (std::size_t r = curves[0].size() * 2 / 3; r < curves[0].size(); ++r) {
    tail10.push_back(curves[0][r].mean_reward);
    tail50.push_back(curves[2][r].mean_reward);
  }
  const bool fluctuation_drops = stddev_of(tail50) < stddev_of(tail10);
  const bool levels_close =
      std::abs(final_levels[2] - final_levels[0]) < 0.05;
  std::printf("shape check (fluctuation shrinks with K; final levels "
              "within 0.05): %s\n",
              fluctuation_drops && levels_close ? "OK" : "NOT REPRODUCED");
  return 0;
}
