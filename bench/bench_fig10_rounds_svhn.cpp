// Fig. 10 — average accuracy vs communication rounds on non-i.i.d.
// SynthSVHN during federated retraining: our searched model vs the big
// pre-defined model. (The paper compares the same pair on SVHN; FedNAS is
// only shown for CIFAR10.)
#include "bench/bench_common.h"
#include "src/baselines/resnet_style.h"

int main() {
  using namespace fms;
  bench::Workload w = bench::make_workload_svhn(10, bench::Dist::kDirichlet);
  SearchConfig cfg = bench::bench_search_config();
  const int rounds = bench::scaled(100);
  SGD::Options fl_opts{cfg.retrain.lr_federated, cfg.retrain.momentum_federated,
                       cfg.retrain.weight_decay_federated,
                       cfg.retrain.clip_federated};

  auto search = bench::run_search(w, cfg, bench::scaled(90),
                                  bench::scaled(110), SearchOptions{});
  // The paper uses a shallower final model for SVHN (16 cells vs 20).
  SupernetConfig eval_cfg = bench::eval_supernet_config();
  eval_cfg.num_cells = 3;
  Rng ours_rng(1);
  DiscreteNet ours(search->derive(), eval_cfg, ours_rng);

  ResNetStyleConfig rcfg;
  Rng rn_rng(2);
  ResNetStyle resnet(rcfg, rn_rng);

  Rng t1(11), t2(12);
  RetrainResult r_ours = federated_train(ours, w.data.train, w.partition,
                                         w.data.test, rounds, 16, fl_opts,
                                         nullptr, t1, 10);
  RetrainResult r_resnet = federated_train(resnet, w.data.train, w.partition,
                                           w.data.test, rounds, 16, fl_opts,
                                           nullptr, t2, 10);

  Series s("Fig. 10 — Average Accuracy vs Rounds on Non-i.i.d. SynthSVHN "
           "(federated P3)");
  s.axes("round", {"ours_train", "resnet_train", "ours_val", "resnet_val"});
  for (int i = 0; i < rounds; ++i) {
    const std::size_t ii = static_cast<std::size_t>(i);
    s.point(i, {r_ours.curve[ii].train_acc, r_resnet.curve[ii].train_acc,
                r_ours.curve[ii].val_acc, r_resnet.curve[ii].val_acc});
  }
  s.print(std::cout, std::max<std::size_t>(1, static_cast<std::size_t>(rounds) / 20));
  s.write_csv("fms_fig10_rounds_svhn.csv");

  std::printf("\nfinal val acc — ours %.3f (%.2fM params), resnet %.3f "
              "(%.2fM params)\n",
              r_ours.final_test_accuracy, ours.param_count() / 1e6,
              r_resnet.final_test_accuracy, resnet.param_count() / 1e6);
  // The synthetic digit task is easy enough that the big model can
  // saturate it; the claim that transfers from the paper is "competitive
  // accuracy at a fraction of the parameters".
  std::printf("shape check (within 0.08 of the fixed model at <1/5 the "
              "params): %s\n",
              (r_ours.final_test_accuracy >=
                   r_resnet.final_test_accuracy - 0.08 &&
               5 * ours.param_count() < resnet.param_count())
                  ? "OK"
                  : "NOT REPRODUCED");
  return 0;
}
