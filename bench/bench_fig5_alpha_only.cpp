// Fig. 5 — updating alpha with theta fixed.
//
// The paper's ablation: freezing theta during the searching phase makes
// the search fail to converge and yields much lower accuracy than joint
// optimization (Fig. 4). Both runs share the same warmed-up supernet.
#include "bench/bench_common.h"

int main() {
  using namespace fms;
  SearchConfig cfg = bench::bench_search_config();
  const int warmup = bench::scaled(120);
  const int steps = bench::scaled(160);

  auto run = [&](bool update_theta) {
    bench::Workload w = bench::make_workload_c10(10, bench::Dist::kIid);
    FederatedSearch search(cfg, w.data.train, w.partition);
    search.run_warmup(warmup);
    SearchOptions opts;
    opts.update_theta = update_theta;
    return search.run_search(steps, opts);
  };

  auto frozen = run(false);
  auto joint = run(true);

  Series s("Fig. 5 — Updating alpha with theta fixed (vs joint, Fig. 4)");
  s.axes("round", {"alpha_only_moving_avg", "joint_moving_avg"});
  for (std::size_t i = 0; i < frozen.size(); ++i) {
    s.point(static_cast<double>(i),
            {frozen[i].moving_avg, joint[i].moving_avg});
  }
  s.print(std::cout, std::max<std::size_t>(1, frozen.size() / 25));
  s.write_csv("fms_fig5_alpha_only.csv");

  std::printf("\nfinal moving avg — alpha-only: %.3f, joint: %.3f\n",
              frozen.back().moving_avg, joint.back().moving_avg);
  std::printf(
      "shape check (joint optimization beats alpha-only): %s\n",
      joint.back().moving_avg > frozen.back().moving_avg ? "OK"
                                                         : "NOT REPRODUCED");
  return 0;
}
