// Table VI — best testing accuracies of the searched models with
// different numbers of FL participants (10 / 20 / 50, SynthC10 split
// equally). The paper's finding: accuracy is roughly unchanged by K even
// though each local dataset shrinks.
#include "bench/bench_common.h"

int main() {
  using namespace fms;
  Table t("Table VI — Best Testing Accuracy vs Number of Participants "
          "(SynthC10)");
  t.columns({"# participants", "Error(%)", "Param(M)"});

  for (int k : {10, 20, 50}) {
    bench::Workload w = bench::make_workload_c10(k, bench::Dist::kIid);
    SearchConfig cfg = bench::bench_search_config();
    cfg.schedule.num_participants = k;
    auto search = bench::run_search(w, cfg, bench::scaled(40),
                                    bench::scaled(60), SearchOptions{});
    SupernetConfig eval_cfg = bench::eval_supernet_config();
    Rng net_rng(400 + static_cast<std::uint64_t>(k));
    DiscreteNet net(search->derive(), eval_cfg, net_rng);
    SGD::Options opts{cfg.retrain.lr_centralized,
                      cfg.retrain.momentum_centralized,
                      cfg.retrain.weight_decay_centralized,
                      cfg.retrain.clip_centralized};
    Rng train_rng(500 + static_cast<std::uint64_t>(k));
    AugmentConfig aug = cfg.augment;
    RetrainResult res =
        centralized_train(net, w.data.train, w.data.test, bench::scaled(3),
                          32, opts, &aug, train_rng, 1);
    t.row({std::to_string(k),
           Table::num(bench::error_pct(res.best_test_accuracy), 2),
           Table::num(net.param_count() / 1e6, 3)});
  }
  t.print();
  t.write_csv("fms_table6_participants.csv");
  std::printf("\nshape target (paper Table VI): accuracy approximately "
              "independent of K.\n");
  return 0;
}
