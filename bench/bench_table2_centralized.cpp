// Table II — centralized evaluation accuracies of searched models on
// i.i.d. SynthC10.
//
// Top half: centralized NAS baselines (DARTS 1st/2nd order, ENAS) vs our
// federated RL search, all retrained centrally (P3) and tested (P4).
// Bottom half: delay-compensated variants — use / throw / ours at 70%
// staleness, and ours at 10% staleness.
#include "bench/bench_common.h"
#include "src/baselines/enas.h"
#include "src/baselines/gradient_nas.h"

namespace {

using namespace fms;

struct Row {
  std::string method;
  Genotype genotype;
  std::string strategy;
  bool fl = false;
};

double retrain_and_eval(const Genotype& g, const bench::Workload& w,
                        double* param_m, std::uint64_t seed) {
  SupernetConfig eval_cfg = bench::eval_supernet_config();
  Rng net_rng(seed);
  DiscreteNet net(g, eval_cfg, net_rng);
  if (param_m != nullptr) {
    *param_m = static_cast<double>(net.param_count()) / 1e6;
  }
  SearchConfig cfg = bench::bench_search_config();
  SGD::Options opts{cfg.retrain.lr_centralized, cfg.retrain.momentum_centralized,
                    cfg.retrain.weight_decay_centralized,
                    cfg.retrain.clip_centralized};
  Rng train_rng(seed ^ 0x7e57);
  AugmentConfig aug = cfg.augment;
  RetrainResult res =
      centralized_train(net, w.data.train, w.data.test, bench::scaled(4), 32,
                        opts, &aug, train_rng, 1);
  return res.best_test_accuracy;
}

}  // namespace

int main() {
  using namespace fms;
  bench::Workload w = bench::make_workload_c10(10, bench::Dist::kIid);
  SearchConfig cfg = bench::bench_search_config();
  const int warmup = bench::scaled(80);
  const int steps = bench::scaled(100);

  std::vector<Row> rows;

  // --- centralized baselines ---
  {
    DartsSearch darts(cfg.supernet, w.data.train, w.data.test, cfg,
                      DartsSearch::Options{});
    rows.push_back({"DARTS (1st order)", darts.run(bench::scaled(40), 16).genotype,
                    "grad", false});
  }
  {
    DartsSearch::Options o;
    o.second_order = true;
    DartsSearch darts(cfg.supernet, w.data.train, w.data.test, cfg, o);
    rows.push_back({"DARTS (2nd order)", darts.run(bench::scaled(25), 16).genotype,
                    "grad", false});
  }
  {
    EnasSearch enas(cfg.supernet, w.data.train, cfg);
    rows.push_back({"ENAS", enas.run(bench::scaled(120), 16, 4).genotype, "RL",
                    false});
  }

  // --- ours and the staleness ablation ---
  auto ours_with = [&](StalePolicy policy, const StalenessDistribution& dist,
                       const char* name) {
    SearchOptions opts;
    opts.stale_policy = policy;
    opts.staleness = dist;
    auto search = bench::run_search(w, cfg, warmup, steps, opts);
    rows.push_back({name, search->derive(), "RL", true});
  };
  ours_with(StalePolicy::kHardSync, StalenessDistribution::none(), "Ours");
  ours_with(StalePolicy::kUseStale, StalenessDistribution::severe(),
            "use (70% staleness)");
  ours_with(StalePolicy::kDrop, StalenessDistribution::severe(),
            "throw (70% staleness)");
  ours_with(StalePolicy::kCompensate, StalenessDistribution::severe(),
            "Ours (70% staleness)");
  ours_with(StalePolicy::kCompensate, StalenessDistribution::slight(),
            "Ours (10% staleness)");

  Table t("Table II — Centralized Evaluation Accuracies of Searched Models "
          "on SynthC10 (i.i.d.)");
  t.columns({"Method", "Error(%)", "Param(M)", "Strategy", "FL", "NAS"});
  std::uint64_t seed = 101;
  for (const auto& row : rows) {
    double param_m = 0.0;
    const double acc = retrain_and_eval(row.genotype, w, &param_m, seed++);
    t.row({row.method, Table::num(bench::error_pct(acc), 2),
           Table::num(param_m, 3), row.strategy, row.fl ? "yes" : "no", "yes"});
  }
  t.print();
  t.write_csv("fms_table2_centralized.csv");
  std::printf(
      "\npaper reference: DARTS1=3.00 DARTS2=2.81 ENAS=2.89 Ours=2.62 | "
      "use70=2.84 throw70=3.00 Ours70=2.72 Ours10=2.59 (Error%%)\n"
      "shape targets: Ours competitive with centralized NAS; "
      "compensate < use < throw at 70%% staleness.\n");
  return 0;
}
