// Table I — default experimental settings.
//
// Prints the paper's default hyperparameters next to the values this
// CPU-scale reproduction uses (FMS_SCALE lengthens schedules toward the
// paper's numbers).
#include "bench/bench_common.h"

int main() {
  using namespace fms;
  SearchConfig cfg = bench::bench_search_config();
  Table t("Table I — Default Experimental Settings (paper vs this repro)");
  t.columns({"name", "paper", "repro"});
  t.row({"batch size", "256", std::to_string(cfg.schedule.batch_size)});
  t.row({"# participants (K)", "10",
         std::to_string(cfg.schedule.num_participants)});
  t.row({"learning rate (theta)", "0.025", Table::num(cfg.theta.learning_rate, 3)});
  t.row({"momentum (theta)", "0.9", Table::num(cfg.theta.momentum, 2)});
  t.row({"weight decay (theta)", "0.0003",
         Table::num(cfg.theta.weight_decay, 4)});
  t.row({"gradient clip (theta)", "5", Table::num(cfg.theta.gradient_clip, 0)});
  t.row({"learning rate (alpha)", "0.003",
         Table::num(cfg.alpha.learning_rate, 3)});
  t.row({"weight decay (alpha)", "0.0001",
         Table::num(cfg.alpha.weight_decay, 4)});
  t.row({"gradient clip (alpha)", "5", Table::num(cfg.alpha.gradient_clip, 0)});
  t.row({"baseline decay (alpha)", "0.99",
         Table::num(cfg.alpha.baseline_decay, 2)});
  t.row({"learning rate (P3, centralized)", "0.025",
         Table::num(cfg.retrain.lr_centralized, 3)});
  t.row({"learning rate (P3, FL)", "0.1",
         Table::num(cfg.retrain.lr_federated, 2)});
  t.row({"momentum (P3, FL)", "0.5",
         Table::num(cfg.retrain.momentum_federated, 2)});
  t.row({"weight decay (P3, FL)", "0.005",
         Table::num(cfg.retrain.weight_decay_federated, 3)});
  t.row({"cutout", "16", std::to_string(cfg.augment.cutout)});
  t.row({"random clip", "4", std::to_string(cfg.augment.random_clip)});
  t.row({"random horizontal flipping", "0.5",
         Table::num(cfg.augment.horizontal_flip_p, 1)});
  t.row({"# warm-up steps", "10000",
         std::to_string(bench::scaled(cfg.schedule.warmup_steps))});
  t.row({"# searching steps", "6000",
         std::to_string(bench::scaled(cfg.schedule.search_steps))});
  t.row({"# training epochs", "600",
         std::to_string(bench::scaled(cfg.schedule.retrain_epochs))});
  t.row({"# FL training steps", "6000",
         std::to_string(bench::scaled(cfg.schedule.fl_train_steps))});
  t.print();
  t.write_csv("fms_table1_settings.csv");
  return 0;
}
